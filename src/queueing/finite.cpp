#include "queueing/finite.hpp"

#include <cmath>
#include <vector>

#include "support/contracts.hpp"

namespace hce::queueing {

namespace {
// Unnormalized birth-death weights computed in a single stable pass:
// w_0 = 1; w_n = w_{n-1} * lambda / (min(n, k) mu). Normalizing at the
// end avoids factorial overflow for any k or B.
std::vector<double> state_weights(const MmkB& q) {
  std::vector<double> w(static_cast<std::size_t>(q.capacity) + 1);
  w[0] = 1.0;
  double scale = 0.0;
  for (int n = 1; n <= q.capacity; ++n) {
    const double rate = std::min(n, q.k) * q.mu;
    w[static_cast<std::size_t>(n)] =
        w[static_cast<std::size_t>(n - 1)] * q.lambda / rate;
    // Renormalize on the fly if weights grow huge (deep overload).
    if (w[static_cast<std::size_t>(n)] > 1e250) {
      for (int j = 0; j <= n; ++j) {
        w[static_cast<std::size_t>(j)] /= 1e250;
      }
      scale += 1.0;  // tracked only to note it happened; ratios unchanged
    }
  }
  (void)scale;
  return w;
}
}  // namespace

MmkB MmkB::make(Rate lambda, Rate mu, int k, int capacity) {
  HCE_EXPECT(lambda >= 0.0, "M/M/k/B: lambda must be non-negative");
  HCE_EXPECT(mu > 0.0, "M/M/k/B: mu must be positive");
  HCE_EXPECT(k >= 1, "M/M/k/B: k must be >= 1");
  HCE_EXPECT(capacity >= k, "M/M/k/B: capacity must be >= k");
  return MmkB{lambda, mu, k, capacity};
}

double MmkB::prob_n(int n) const {
  HCE_EXPECT(n >= 0 && n <= capacity, "M/M/k/B: n out of range");
  const auto w = state_weights(*this);
  double total = 0.0;
  for (double x : w) total += x;
  return w[static_cast<std::size_t>(n)] / total;
}

double MmkB::blocking_probability() const { return prob_n(capacity); }

Rate MmkB::throughput() const {
  return lambda * (1.0 - blocking_probability());
}

double MmkB::mean_in_system() const {
  const auto w = state_weights(*this);
  double total = 0.0, weighted = 0.0;
  for (std::size_t n = 0; n < w.size(); ++n) {
    total += w[n];
    weighted += static_cast<double>(n) * w[n];
  }
  return weighted / total;
}

double MmkB::mean_queue_length() const {
  const auto w = state_weights(*this);
  double total = 0.0, weighted = 0.0;
  for (std::size_t n = 0; n < w.size(); ++n) {
    total += w[n];
    const auto queued = static_cast<double>(
        n > static_cast<std::size_t>(k) ? n - static_cast<std::size_t>(k)
                                        : 0);
    weighted += queued * w[n];
  }
  return weighted / total;
}

Time MmkB::mean_wait_accepted() const {
  const Rate accepted = throughput();
  if (accepted <= 0.0) return 0.0;
  return mean_queue_length() / accepted;  // Little's law on the queue
}

Time MmkB::mean_response_accepted() const {
  return mean_wait_accepted() + 1.0 / mu;
}

MmkB erlang_loss(Rate lambda, Rate mu, int k) {
  return MmkB::make(lambda, mu, k, k);
}

}  // namespace hce::queueing
