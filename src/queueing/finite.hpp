// Finite-capacity (loss) queueing systems: M/M/k/B.
//
// The paper's testbed "starts dropping requests or thrashing" at
// saturation (§4.2) — real servers have bounded queues. M/M/k/B models a
// k-server FCFS station that admits at most B requests in total (queue +
// in service) and rejects the rest. It quantifies the throughput/loss
// behaviour of an overloaded edge site, which the pure M/M/k model cannot
// (its queue grows without bound above rho = 1).
#pragma once

#include "support/time.hpp"

namespace hce::queueing {

struct MmkB {
  Rate lambda = 0.0;
  Rate mu = 0.0;  ///< per-server service rate
  int k = 1;      ///< servers
  int capacity = 1;  ///< B: max in system (>= k)

  /// Validates inputs. Unlike M/M/k, any lambda >= 0 is admissible — the
  /// finite buffer keeps the system stable even above nominal saturation.
  static MmkB make(Rate lambda, Rate mu, int k, int capacity);

  /// Steady-state probability of n in system, n in [0, capacity].
  double prob_n(int n) const;
  /// Probability an arriving request is rejected (PASTA: == prob_n(B)).
  double blocking_probability() const;
  /// Accepted throughput lambda (1 - P_block).
  Rate throughput() const;
  /// Mean number in system.
  double mean_in_system() const;
  /// Mean queue length (excluding in service).
  double mean_queue_length() const;
  /// Mean waiting time of *accepted* requests (Little on the queue).
  Time mean_wait_accepted() const;
  /// Mean response time of accepted requests.
  Time mean_response_accepted() const;
  /// Offered utilization lambda/(k mu) — may exceed 1.
  double offered_utilization() const { return lambda / (mu * k); }
  /// Actual server utilization (throughput/(k mu)), always < 1.
  double server_utilization() const { return throughput() / (mu * k); }
};

/// Erlang loss system M/M/k/k (no queue): blocking == Erlang-B.
MmkB erlang_loss(Rate lambda, Rate mu, int k);

}  // namespace hce::queueing
