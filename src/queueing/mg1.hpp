// M/G/1 (Pollaczek–Khinchine) and the M/D/1 special case.
//
// Used to validate the simulator against exact results for non-exponential
// service (the DNN service has sub-exponential variability), and as the
// scv-sensitive single-queue reference in ablation benches.
#pragma once

#include "support/time.hpp"

namespace hce::queueing {

struct Mg1 {
  Rate lambda = 0.0;
  Rate mu = 0.0;       ///< 1 / mean service time
  double scv = 1.0;    ///< squared CoV of service time (c_B²)

  static Mg1 make(Rate lambda, Rate mu, double service_scv);

  double utilization() const { return lambda / mu; }
  /// Pollaczek–Khinchine mean waiting time:
  /// E[Wq] = rho/(mu(1-rho)) * (1 + c²)/2.
  Time mean_wait() const;
  Time mean_response() const { return mean_wait() + 1.0 / mu; }
  double mean_queue_length() const { return lambda * mean_wait(); }
  double mean_in_system() const { return lambda * mean_response(); }
};

/// M/D/1 mean waiting time (scv = 0): rho / (2 mu (1 - rho)).
Time md1_mean_wait(Rate lambda, Rate mu);

}  // namespace hce::queueing
