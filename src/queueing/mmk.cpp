#include "queueing/mmk.hpp"

#include <cmath>

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace hce::queueing {

double erlang_b(double offered_load, int k) {
  HCE_EXPECT(offered_load >= 0.0, "erlang_b: offered load >= 0");
  HCE_EXPECT(k >= 0, "erlang_b: k >= 0");
  // B(a, 0) = 1; B(a, j) = a B(a, j-1) / (j + a B(a, j-1)).
  double b = 1.0;
  for (int j = 1; j <= k; ++j) {
    b = offered_load * b / (static_cast<double>(j) + offered_load * b);
  }
  return b;
}

double erlang_c(double offered_load, int k) {
  HCE_EXPECT(k >= 1, "erlang_c: k >= 1");
  HCE_EXPECT(offered_load < static_cast<double>(k),
             "erlang_c: requires offered load < k (stability)");
  if (offered_load <= 0.0) return 0.0;
  const double b = erlang_b(offered_load, k);
  const double rho = offered_load / static_cast<double>(k);
  return b / (1.0 - rho * (1.0 - b));
}

Mmk Mmk::make(Rate lambda, Rate mu, int k) {
  HCE_EXPECT(lambda >= 0.0, "M/M/k: lambda must be non-negative");
  HCE_EXPECT(mu > 0.0, "M/M/k: mu must be positive");
  HCE_EXPECT(k >= 1, "M/M/k: k must be >= 1");
  HCE_EXPECT(lambda < mu * k, "M/M/k: unstable (lambda >= k mu)");
  return Mmk{lambda, mu, k};
}

double Mmk::prob_wait() const { return erlang_c(offered_load(), k); }

Time Mmk::mean_wait() const {
  return prob_wait() / (static_cast<double>(k) * mu - lambda);
}

Time Mmk::mean_wait_given_wait() const {
  return 1.0 / (static_cast<double>(k) * mu - lambda);
}

double Mmk::wait_tail(Time t) const {
  HCE_EXPECT(t >= 0.0, "tail time must be non-negative");
  const double theta = static_cast<double>(k) * mu - lambda;
  return prob_wait() * std::exp(-theta * t);
}

Time Mmk::wait_quantile(double q) const {
  HCE_EXPECT(q >= 0.0 && q < 1.0, "quantile in [0,1)");
  const double c = prob_wait();
  if (q <= 1.0 - c) return 0.0;
  const double theta = static_cast<double>(k) * mu - lambda;
  return -std::log((1.0 - q) / c) / theta;
}

double Mmk::response_tail(Time t) const {
  HCE_EXPECT(t >= 0.0, "tail time must be non-negative");
  const double c = prob_wait();
  const double theta = static_cast<double>(k) * mu - lambda;
  const double no_wait = (1.0 - c) * std::exp(-mu * t);
  if (std::abs(theta - mu) < 1e-12 * mu) {
    // theta == mu limit: Wq|wait + S is Erlang-2.
    return no_wait + c * std::exp(-mu * t) * (1.0 + mu * t);
  }
  const double conv =
      (theta * std::exp(-mu * t) - mu * std::exp(-theta * t)) / (theta - mu);
  return no_wait + c * conv;
}

Time Mmk::response_quantile(double q) const {
  HCE_EXPECT(q >= 0.0 && q < 1.0, "quantile in [0,1)");
  if (q == 0.0) return 0.0;
  // response_tail is strictly decreasing from 1; bracket then bisect.
  double hi = 1.0 / mu;
  while (response_tail(hi) > 1.0 - q) hi *= 2.0;
  const auto r = bisect([&](double t) { return (1.0 - response_tail(t)) - q; },
                        0.0, hi);
  return r.x;
}

}  // namespace hce::queueing
