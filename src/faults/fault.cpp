#include "faults/fault.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace hce::faults {

namespace {

/// Inverse-CDF exponential draw; inlined (rather than dist::exponential)
/// so the trace generator consumes exactly one uniform per draw — easy to
/// reason about when auditing stream consumption.
Time exp_draw(Time mean, Rng& rng) {
  return -mean * std::log1p(-rng.uniform01());
}

std::vector<Outage> generate_outages(const SiteFaultConfig& cfg,
                                     Time horizon, Rng& rng) {
  std::vector<Outage> out;
  if (!cfg.enabled) return out;
  HCE_EXPECT(cfg.mttf >= 0.0 && cfg.mttr > 0.0,
             "site fault MTTF must be non-negative and MTTR positive");
  if (cfg.mttf == 0.0) {
    // Degenerate limit of the alternating-renewal process: zero mean
    // up-time means the site is down from t = 0 for the whole horizon
    // (availability() agrees: 0 / (0 + mttr) = 0). No RNG draw is
    // consumed, so a scenario flipping a site between mttf = 0 and
    // mttf > 0 perturbs no other stream.
    out.push_back(Outage{0.0, horizon});
    return out;
  }
  Time t = 0.0;
  for (;;) {
    t += exp_draw(cfg.mttf, rng);  // up interval
    if (t >= horizon) break;
    const Time down = exp_draw(cfg.mttr, rng);
    out.push_back(Outage{t, t + down});
    t += down;
  }
  return out;
}

std::vector<LinkEvent> generate_link_events(const LinkFaultConfig& cfg,
                                            Time horizon, Rng& rng) {
  std::vector<LinkEvent> out;
  if (!cfg.enabled) return out;
  HCE_EXPECT(cfg.mean_spike_gap > 0.0 && cfg.mean_spike_duration > 0.0,
             "link fault gap/duration must be positive");
  HCE_EXPECT(cfg.partition_fraction >= 0.0 && cfg.partition_fraction <= 1.0,
             "partition_fraction must be in [0, 1]");
  Time t = 0.0;
  for (;;) {
    t += exp_draw(cfg.mean_spike_gap, rng);
    if (t >= horizon) break;
    LinkEvent e;
    e.start = t;
    e.end = t + exp_draw(cfg.mean_spike_duration, rng);
    e.partition = rng.uniform01() < cfg.partition_fraction;
    e.extra_rtt = e.partition ? 0.0 : cfg.spike_extra_rtt;
    out.push_back(e);
    t = e.end;
  }
  return out;
}

}  // namespace

LinkSchedule::LinkSchedule(std::vector<LinkEvent> events)
    : events_(std::move(events)) {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    HCE_EXPECT(events_[i].start >= events_[i - 1].end,
               "link events must be sorted and non-overlapping");
  }
}

const LinkEvent* LinkSchedule::find(Time t) const {
  // Last event with start <= t.
  const auto it = std::upper_bound(
      events_.begin(), events_.end(), t,
      [](Time x, const LinkEvent& e) { return x < e.start; });
  if (it == events_.begin()) return nullptr;
  const LinkEvent& e = *(it - 1);
  return t < e.end ? &e : nullptr;
}

Time LinkSchedule::extra_one_way(Time t) const {
  const LinkEvent* e = find(t);
  return e != nullptr ? e->extra_rtt / 2.0 : 0.0;
}

bool LinkSchedule::partitioned(Time t) const {
  const LinkEvent* e = find(t);
  return e != nullptr && e->partition;
}

FaultTrace FaultTrace::generate(const FaultConfig& config, int num_sites,
                                Time horizon, Rng rng) {
  HCE_EXPECT(num_sites >= 1, "fault trace needs >= 1 site");
  HCE_EXPECT(horizon > 0.0, "fault trace needs a positive horizon");
  FaultTrace trace;
  trace.horizon = horizon;
  trace.site_outages.resize(static_cast<std::size_t>(num_sites));
  trace.site_link_events.resize(static_cast<std::size_t>(num_sites));
  // Dedicated substream per fault process: adding/removing one process
  // (or resizing one site's trace) cannot perturb any other stream.
  for (int s = 0; s < num_sites; ++s) {
    Rng site_rng = rng.stream("site-outage", static_cast<std::uint64_t>(s));
    trace.site_outages[static_cast<std::size_t>(s)] =
        generate_outages(config.edge_site, horizon, site_rng);
    Rng link_rng = rng.stream("site-link", static_cast<std::uint64_t>(s));
    trace.site_link_events[static_cast<std::size_t>(s)] =
        generate_link_events(config.edge_link, horizon, link_rng);
  }
  Rng cloud_rng = rng.stream("cloud-link");
  trace.cloud_link_events =
      generate_link_events(config.cloud_link, horizon, cloud_rng);
  return trace;
}

bool FaultTrace::in_outage(const std::vector<Outage>& outages, Time t) {
  const auto it = std::upper_bound(
      outages.begin(), outages.end(), t,
      [](Time x, const Outage& o) { return x < o.start; });
  if (it == outages.begin()) return false;
  return t < (it - 1)->end;
}

double FaultTrace::site_downtime_fraction(int site) const {
  const auto& outages = site_outages.at(static_cast<std::size_t>(site));
  Time down = 0.0;
  for (const Outage& o : outages) {
    down += std::min(o.end, horizon) - o.start;
  }
  return horizon > 0.0 ? down / horizon : 0.0;
}

bool FaultTrace::blackout() const {
  if (site_outages.empty()) return false;
  for (const auto& outages : site_outages) {
    // Outage lists are sorted by start (as generated); walk the covered
    // prefix, allowing touching/overlapping intervals from hand-built
    // traces. Any gap before the horizon is an up instant.
    Time covered = 0.0;
    for (const Outage& o : outages) {
      if (o.start > covered) return false;
      covered = std::max(covered, o.end);
      if (covered >= horizon) break;
    }
    if (covered < horizon) return false;
  }
  return true;
}

std::shared_ptr<const LinkSchedule> FaultTrace::site_link_schedule(
    int site) const {
  const auto& events = site_link_events.at(static_cast<std::size_t>(site));
  if (events.empty()) return nullptr;
  return std::make_shared<const LinkSchedule>(events);
}

std::shared_ptr<const LinkSchedule> FaultTrace::cloud_link_schedule() const {
  if (cloud_link_events.empty()) return nullptr;
  return std::make_shared<const LinkSchedule>(cloud_link_events);
}

}  // namespace hce::faults
