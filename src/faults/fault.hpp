// Deterministic fault injection: site crashes, WAN jitter spikes, and
// transient partitions.
//
// The paper's inversion argument (Lemmas 3.1-3.3) compares k small edge
// queues against one pooled cloud queue at *nominal* capacity. Partial
// failure makes the comparison starker: losing one of k edge sites
// concentrates its load on the survivors and pushes them past the cutoff
// utilization, while a consolidated cloud losing the same hardware (one
// server group out of k) degrades gracefully — the bank-teller argument
// applied to degraded capacity. Public edge platforms really do churn
// ("From Cloud to Edge: A First Look at Public Edge Platforms" reports
// node churn and WAN jitter dominating tail latency), so fault drills are
// part of the reproduction, not an extra.
//
// Design: faults are *pre-generated* into a FaultTrace before the
// simulation starts, from a dedicated RNG substream. Two consequences:
//   1. common random numbers — the identical trace is applied to the edge
//      and cloud deployments of a paired comparison (same machines fail at
//      the same instants), so the measured edge/cloud gap under failure is
//      not blurred by fault-sampling noise;
//   2. determinism — no self-rescheduling fault process lives on the
//      event calendar, so the calendar drains, sweeps stay byte-identical
//      across thread counts, and a trace can be printed/diffed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "support/time.hpp"

namespace hce::faults {

/// Crash/recover process for a class of sites: exponential up-times with
/// mean `mttf` alternating with exponential repair times with mean `mttr`
/// (the standard alternating-renewal availability model; steady-state
/// availability = mttf / (mttf + mttr)).
struct SiteFaultConfig {
  bool enabled = false;
  Time mttf = hours(1);     ///< mean time to failure (up-time)
  Time mttr = minutes(2);   ///< mean time to repair (down-time)

  /// Steady-state availability implied by the MTTF/MTTR pair.
  double availability() const {
    return enabled ? mttf / (mttf + mttr) : 1.0;
  }
};

/// Transient WAN degradation on a client<->deployment link: spikes arrive
/// as a Poisson process (mean gap `mean_spike_gap`), last an exponential
/// `mean_spike_duration`, and either add `spike_extra_rtt` of latency or
/// — with probability `partition_fraction` — partition the link outright
/// (requests and responses in flight during a partition are lost).
struct LinkFaultConfig {
  bool enabled = false;
  Time mean_spike_gap = minutes(5);
  Time mean_spike_duration = 2.0;
  Time spike_extra_rtt = ms(100);
  double partition_fraction = 0.0;  ///< in [0, 1]
};

/// Full fault model for one scenario.
struct FaultConfig {
  /// Per-edge-site crash/recover process (independent draws per site).
  SiteFaultConfig edge_site;
  /// Mirror each edge-site outage onto the cloud as the loss of the
  /// corresponding server *group* (same physical machines failing under
  /// either deployment — the CRN pairing of hardware faults).
  bool mirror_to_cloud = true;
  /// WAN faults on each edge site's access link (independent per site).
  LinkFaultConfig edge_link;
  /// WAN faults on the (single) client->cloud path.
  LinkFaultConfig cloud_link;

  bool any() const {
    return edge_site.enabled || edge_link.enabled || cloud_link.enabled;
  }
};

/// One down interval [start, end).
struct Outage {
  Time start = 0.0;
  Time end = 0.0;
};

/// One WAN degradation window [start, end).
struct LinkEvent {
  Time start = 0.0;
  Time end = 0.0;
  Time extra_rtt = 0.0;   ///< added round-trip latency during the window
  bool partition = false; ///< true: link drops traffic instead
};

/// Time-indexed view over one link's event list (sorted, non-overlapping).
/// Lookup is O(log n) binary search; deployments consult it per leg.
class LinkSchedule {
 public:
  explicit LinkSchedule(std::vector<LinkEvent> events);

  /// Extra one-way delay at time `t` (half the window's extra RTT).
  Time extra_one_way(Time t) const;
  /// True if the link is partitioned at time `t` (traffic is dropped).
  bool partitioned(Time t) const;
  const std::vector<LinkEvent>& events() const { return events_; }

 private:
  const LinkEvent* find(Time t) const;
  std::vector<LinkEvent> events_;
};

/// A fully materialized fault schedule over [0, horizon): per-site outage
/// lists plus per-link degradation windows. Byte-deterministic in
/// (config, num_sites, horizon, rng seed).
struct FaultTrace {
  Time horizon = 0.0;
  /// site_outages[i]: down intervals of edge site i. When
  /// mirror_to_cloud is set these same intervals take down cloud server
  /// group i.
  std::vector<std::vector<Outage>> site_outages;
  /// Per-edge-site access-link degradation windows.
  std::vector<std::vector<LinkEvent>> site_link_events;
  /// Client->cloud path degradation windows.
  std::vector<LinkEvent> cloud_link_events;

  static FaultTrace generate(const FaultConfig& config, int num_sites,
                             Time horizon, Rng rng);

  /// True if `t` falls inside one of `outages` (they are sorted).
  static bool in_outage(const std::vector<Outage>& outages, Time t);

  /// Fraction of [0, horizon) that site `i` is down.
  double site_downtime_fraction(int site) const;

  /// True iff every site's outage union covers all of [0, horizon) — no
  /// site has a single up instant, so a deployment applying these outages
  /// provably delivers nothing. The sweep runner uses this to short-
  /// circuit dead replications. Generated traces essentially never
  /// blackout (the first up-time draw is strictly positive); the
  /// `mttf == 0` down-from-t-zero limit and hand-built traces do.
  bool blackout() const;

  /// Shareable per-link schedules (empty pointers when no events).
  std::shared_ptr<const LinkSchedule> site_link_schedule(int site) const;
  std::shared_ptr<const LinkSchedule> cloud_link_schedule() const;
};

}  // namespace hce::faults
