// Box-plot and violin (kernel density) summaries.
//
// Fig. 2 and Fig. 10 are box plots; Fig. 6 is a violin plot. These types
// compute the numeric content of those figures so the benches can print
// them as tables/ASCII.
#pragma once

#include <string>
#include <vector>

namespace hce::stats {

/// Tukey five-number summary with 1.5*IQR whiskers.
struct BoxSummary {
  double min = 0.0;           ///< sample minimum
  double q1 = 0.0;            ///< lower quartile
  double median = 0.0;
  double q3 = 0.0;            ///< upper quartile
  double max = 0.0;           ///< sample maximum
  double whisker_lo = 0.0;    ///< lowest point >= q1 - 1.5*IQR
  double whisker_hi = 0.0;    ///< highest point <= q3 + 1.5*IQR
  std::size_t n = 0;
  std::size_t outliers = 0;   ///< points beyond the whiskers
  double mean = 0.0;

  double iqr() const { return q3 - q1; }
};

/// Computes a BoxSummary; sorts a copy of the sample.
BoxSummary box_summary(std::vector<double> sample);

/// Gaussian kernel density estimate on an even grid — the "body" of a
/// violin plot.
struct ViolinSummary {
  std::vector<double> grid;     ///< evaluation points
  std::vector<double> density;  ///< KDE values (integrates to ~1)
  BoxSummary box;               ///< embedded box summary
  double bandwidth = 0.0;       ///< Silverman bandwidth used
};

/// Computes a violin summary over `points` grid cells spanning
/// [whisker_lo, whisker_hi] padded by one bandwidth.
ViolinSummary violin_summary(std::vector<double> sample, int points = 64);

/// ASCII rendering of one violin: a vertical profile of density bars with
/// quartile markers, for bench output.
std::string render_violin(const ViolinSummary& v, int width = 56,
                          int rows = 20);

}  // namespace hce::stats
