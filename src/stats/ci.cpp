#include "stats/ci.hpp"

#include <algorithm>
#include <cmath>

#include "stats/quantiles.hpp"
#include "stats/summary.hpp"
#include "support/contracts.hpp"

namespace hce::stats {

namespace {
/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9).
double norm_ppf(double p) {
  HCE_EXPECT(p > 0.0 && p < 1.0, "norm_ppf domain");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}
}  // namespace

double t_critical(int df, double level) {
  HCE_EXPECT(df >= 1, "t_critical requires df >= 1");
  HCE_EXPECT(level > 0.0 && level < 1.0, "confidence level in (0,1)");
  const double p = 0.5 + level / 2.0;
  const double z = norm_ppf(p);
  // Cornish-Fisher expansion of the t quantile in powers of 1/df.
  const double z2 = z * z;
  const double z3 = z2 * z;
  const double z5 = z3 * z2;
  const double z7 = z5 * z2;
  const double n = static_cast<double>(df);
  double t = z + (z3 + z) / (4.0 * n) +
             (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n) +
             (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) /
                 (384.0 * n * n * n);
  // For df == 1 and 2 closed forms exist; use them (the expansion is poor).
  if (df == 1) t = std::tan(M_PI * (p - 0.5));
  if (df == 2) t = (2.0 * p - 1.0) * std::sqrt(2.0 / (1.0 - (2.0 * p - 1.0) * (2.0 * p - 1.0)));
  return t;
}

ConfidenceInterval replication_ci(const std::vector<double>& means,
                                  double level) {
  HCE_EXPECT(means.size() >= 2, "replication_ci needs >= 2 replications");
  Summary s;
  for (double m : means) s.add(m);
  ConfidenceInterval ci;
  ci.mean = s.mean();
  ci.half_width = t_critical(static_cast<int>(means.size()) - 1, level) *
                  s.stddev() / std::sqrt(static_cast<double>(means.size()));
  return ci;
}

ConfidenceInterval batch_means_ci(const std::vector<double>& observations,
                                  int num_batches, double level) {
  HCE_EXPECT(num_batches >= 2, "batch_means_ci needs >= 2 batches");
  HCE_EXPECT(observations.size() >= static_cast<std::size_t>(num_batches),
             "batch_means_ci: fewer observations than batches");
  // Every observation lands in exactly one batch: when the count does not
  // divide evenly, the first (size % num_batches) batches take one extra
  // observation (sizes differ by at most one). Discarding the remainder
  // instead — as this function once did — silently biased the interval
  // toward the prefix of the sequence, dropping up to num_batches - 1 of
  // the most recent (best-converged, for a warming process) observations.
  const std::size_t nb = static_cast<std::size_t>(num_batches);
  const std::size_t base = observations.size() / nb;
  const std::size_t extra = observations.size() % nb;
  std::vector<double> means;
  means.reserve(nb);
  std::size_t start = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t len = base + (b < extra ? 1 : 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < len; ++i) sum += observations[start + i];
    means.push_back(sum / static_cast<double>(len));
    start += len;
  }
  return replication_ci(means, level);
}

ConfidenceInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    Rng rng, int resamples, double level) {
  HCE_EXPECT(!sample.empty(), "bootstrap_ci of empty sample");
  HCE_EXPECT(resamples >= 10, "bootstrap_ci needs >= 10 resamples");
  std::vector<double> stat_values;
  stat_values.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> resample(sample.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& x : resample) {
      x = sample[rng.below(sample.size())];
    }
    stat_values.push_back(statistic(resample));
  }
  std::sort(stat_values.begin(), stat_values.end());
  const double alpha = 1.0 - level;
  const double lo = quantile_sorted(stat_values, alpha / 2.0);
  const double hi = quantile_sorted(stat_values, 1.0 - alpha / 2.0);
  ConfidenceInterval ci;
  ci.mean = statistic(sample);
  ci.half_width = (hi - lo) / 2.0;
  return ci;
}

}  // namespace hce::stats
