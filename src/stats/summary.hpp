// Streaming moment statistics (Welford's algorithm).
//
// Used everywhere latencies, inter-arrival times, or service times are
// accumulated. Single pass, numerically stable, mergeable (for combining
// per-thread replication results).
#pragma once

#include <cstdint>

namespace hce::stats {

class Summary {
 public:
  void add(double x);

  /// Merges another summary into this one (parallel reduction), using the
  /// Chan et al. pairwise update.
  void merge(const Summary& other);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation, stddev/mean; 0 for zero mean.
  double cov() const;
  /// Squared coefficient of variation — the c² terms in the paper's
  /// Allen-Cunneen bound (Lemma 3.2).
  double scv() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hce::stats
