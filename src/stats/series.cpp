#include "stats/series.hpp"

#include "support/contracts.hpp"

namespace hce::stats {

BinnedSeries::BinnedSeries(Time t0, Time bin_width, std::size_t num_bins)
    : t0_(t0), width_(bin_width) {
  HCE_EXPECT(bin_width > 0.0, "BinnedSeries bin width must be positive");
  HCE_EXPECT(num_bins > 0, "BinnedSeries needs at least one bin");
  counts_.assign(num_bins, 0);
  sums_.assign(num_bins, 0.0);
}

std::size_t BinnedSeries::index_for(Time t) const {
  if (t <= t0_) return 0;
  const auto idx = static_cast<std::size_t>((t - t0_) / width_);
  return idx >= counts_.size() ? counts_.size() - 1 : idx;
}

void BinnedSeries::add(Time t, double value) {
  const std::size_t i = index_for(t);
  ++counts_[i];
  sums_[i] += value;
}

void BinnedSeries::count_event(Time t) {
  ++counts_[index_for(t)];
}

Time BinnedSeries::bin_start(std::size_t i) const {
  HCE_EXPECT(i < counts_.size(), "BinnedSeries bin index out of range");
  return t0_ + width_ * static_cast<Time>(i);
}

double BinnedSeries::mean(std::size_t i) const {
  HCE_EXPECT(i < counts_.size(), "BinnedSeries bin index out of range");
  return counts_[i] == 0 ? 0.0
                         : sums_[i] / static_cast<double>(counts_[i]);
}

std::vector<double> BinnedSeries::counts_per_bin() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]);
  }
  return out;
}

std::vector<double> BinnedSeries::means_per_bin() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = mean(i);
  return out;
}

}  // namespace hce::stats
