// Autocorrelation diagnostics for steady-state simulation output.
//
// Consecutive waiting times from one queue are strongly correlated, so a
// naive CI from n samples pretends to far more information than the run
// contains. These helpers quantify that: the autocorrelation function,
// the integrated autocorrelation time (IAT), and the effective sample
// size n_eff = n / IAT — the honest divisor for steady-state CIs and the
// principled way to pick batch sizes for stats::batch_means_ci.
#pragma once

#include <cstddef>
#include <vector>

namespace hce::stats {

/// Sample autocorrelation at a single lag (biased estimator, the standard
/// choice for IAT computation). lag must be < sample size.
double autocorrelation(const std::vector<double>& sample, std::size_t lag);

/// Autocorrelation function for lags [0, max_lag].
std::vector<double> autocorrelation_function(const std::vector<double>& sample,
                                             std::size_t max_lag);

/// Integrated autocorrelation time: 1 + 2 * sum of positive-sequence
/// autocorrelations, truncated at the first non-positive pair (Geyer's
/// initial positive sequence rule). >= 1; equals ~1 for iid data.
double integrated_autocorrelation_time(const std::vector<double>& sample,
                                       std::size_t max_lag = 0);

/// Effective sample size n / IAT.
double effective_sample_size(const std::vector<double>& sample);

/// Suggested batch count for batch-means CIs: enough batches for a stable
/// t interval while each batch spans >= 10 IATs. Clamped to [2, 64].
int suggested_batch_count(const std::vector<double>& sample);

}  // namespace hce::stats
