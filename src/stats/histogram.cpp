#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/contracts.hpp"

namespace hce::stats {

LatencyHistogram::LatencyHistogram(double min_value, int buckets_per_decade,
                                   int num_decades)
    : min_value_(min_value) {
  HCE_EXPECT(min_value > 0.0, "histogram min_value must be positive");
  HCE_EXPECT(buckets_per_decade >= 1, "buckets_per_decade must be >= 1");
  HCE_EXPECT(num_decades >= 1, "num_decades must be >= 1");
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / buckets_per_decade;
  inv_log_step_ = static_cast<double>(buckets_per_decade);
  counts_.assign(
      static_cast<std::size_t>(buckets_per_decade * num_decades) + 2, 0);
}

int LatencyHistogram::bucket_index(double value) const {
  if (!(value > min_value_)) return 0;
  const double pos = (std::log10(value) - log_min_) * inv_log_step_;
  const int idx = static_cast<int>(pos) + 1;
  return std::min(idx, static_cast<int>(counts_.size()) - 1);
}

void LatencyHistogram::add(double value) {
  HCE_EXPECT(std::isfinite(value), "histogram value must be finite");
  ++counts_[static_cast<std::size_t>(bucket_index(value))];
  ++total_;
  sum_ += value;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  HCE_EXPECT(counts_.size() == other.counts_.size() &&
                 min_value_ == other.min_value_,
             "histogram merge requires identical bucket layout");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LatencyHistogram::bucket_lower(int i) const {
  HCE_EXPECT(i >= 0 && i <= static_cast<int>(counts_.size()),
             "bucket index out of range");
  if (i == 0) return 0.0;
  return std::pow(10.0, log_min_ + (i - 1) * log_step_);
}

double LatencyHistogram::quantile(double q) const {
  HCE_EXPECT(total_ > 0, "quantile of empty histogram");
  HCE_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability in [0,1]");
  const double target = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      const double lo = bucket_lower(static_cast<int>(i));
      const double hi = bucket_upper(static_cast<int>(i));
      if (lo <= 0.0) return hi;
      return std::sqrt(lo * hi);  // geometric midpoint
    }
  }
  return bucket_upper(static_cast<int>(counts_.size()) - 1);
}

double LatencyHistogram::mean_estimate() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

std::string LatencyHistogram::render(int max_rows) const {
  std::ostringstream os;
  if (total_ == 0) return "(empty histogram)\n";
  // Find non-empty range.
  int first = -1, last = -1;
  std::uint64_t peak = 0;
  for (int i = 0; i < static_cast<int>(counts_.size()); ++i) {
    if (counts_[static_cast<std::size_t>(i)] > 0) {
      if (first < 0) first = i;
      last = i;
      peak = std::max(peak, counts_[static_cast<std::size_t>(i)]);
    }
  }
  const int span = last - first + 1;
  const int group = std::max(1, (span + max_rows - 1) / max_rows);
  for (int i = first; i <= last; i += group) {
    std::uint64_t c = 0;
    for (int j = i; j < std::min(i + group, last + 1); ++j) {
      c += counts_[static_cast<std::size_t>(j)];
    }
    const int bar =
        static_cast<int>(60.0 * static_cast<double>(c) /
                         static_cast<double>(peak * group) + 0.5);
    char label[32];
    std::snprintf(label, sizeof label, "%10.4g", bucket_lower(i));
    os << label << " "
       << std::string(static_cast<std::size_t>(std::min(bar, 60)), '#') << " "
       << c << '\n';
  }
  return os.str();
}

}  // namespace hce::stats
