// Time-binned series accumulator.
//
// Figures 8 and 9 of the paper are time series (per-site request counts per
// minute; mean latency over time). BinnedSeries buckets observations by
// timestamp and exposes per-bin counts/means for those plots.
#pragma once

#include <cstdint>
#include <vector>

#include "support/time.hpp"

namespace hce::stats {

class BinnedSeries {
 public:
  /// Bins [t0, t0 + width), [t0 + width, ...), `num_bins` of them.
  BinnedSeries(Time t0, Time bin_width, std::size_t num_bins);

  /// Adds observation `value` at time `t`. Out-of-range timestamps clamp
  /// into the first/last bin.
  void add(Time t, double value);

  /// Increments the count in the bin for time `t` without a value (for
  /// pure event-count series such as Fig. 8's requests/minute).
  void count_event(Time t);

  std::size_t num_bins() const { return counts_.size(); }
  Time bin_start(std::size_t i) const;
  Time bin_width() const { return width_; }
  std::uint64_t count(std::size_t i) const { return counts_.at(i); }
  /// Mean of observations in bin i; 0 if the bin is empty.
  double mean(std::size_t i) const;
  double sum(std::size_t i) const { return sums_.at(i); }

  /// Vector of per-bin counts (rates when divided by width).
  std::vector<double> counts_per_bin() const;
  /// Vector of per-bin means.
  std::vector<double> means_per_bin() const;

 private:
  std::size_t index_for(Time t) const;

  Time t0_;
  Time width_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> sums_;
};

}  // namespace hce::stats
