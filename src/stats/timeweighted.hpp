// Time-weighted statistics for piecewise-constant processes.
//
// Queue length, number-in-system, and server-busy indicators are step
// functions of simulated time; their *time averages* (not sample averages)
// are what Little's law and utilization refer to. TimeWeighted integrates
// a step function exactly as the simulation advances.
#pragma once

#include "support/contracts.hpp"
#include "support/time.hpp"

namespace hce::stats {

class TimeWeighted {
 public:
  /// Begins observation at time t0 with initial level `value`.
  explicit TimeWeighted(Time t0 = 0.0, double value = 0.0)
      : last_time_(t0), start_time_(t0), value_(value) {}

  /// Records that the level changed to `value` at time `now`. `now` must
  /// be non-decreasing.
  void set(Time now, double value) {
    HCE_EXPECT(now >= last_time_, "TimeWeighted: time went backwards");
    integral_ += value_ * (now - last_time_);
    last_time_ = now;
    value_ = value;
    if (value > max_) max_ = value;
  }

  /// Adds `delta` to the current level at time `now`.
  void adjust(Time now, double delta) { set(now, value_ + delta); }

  /// Resets the integral (not the level) at time `now` — used to discard
  /// the warmup period.
  void reset(Time now) {
    set(now, value_);
    integral_ = 0.0;
    start_time_ = now;
    max_ = value_;
  }

  double current() const { return value_; }
  double max() const { return max_; }

  /// Time average over [start, now]. Requires now > start.
  double average(Time now) const {
    HCE_EXPECT(now >= last_time_, "TimeWeighted: time went backwards");
    const Time span = now - start_time_;
    if (span <= 0.0) return value_;
    return (integral_ + value_ * (now - last_time_)) / span;
  }

  /// Raw integral of the level over [start, now].
  double integral(Time now) const {
    HCE_EXPECT(now >= last_time_, "TimeWeighted: time went backwards");
    return integral_ + value_ * (now - last_time_);
  }

 private:
  Time last_time_;
  Time start_time_;
  double value_;
  double integral_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hce::stats
