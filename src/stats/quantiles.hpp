// Quantile estimation: exact (sort-based) and streaming (P² algorithm).
//
// Tail latency is central to the paper (Fig. 5: tail inversion occurs at
// lower utilization than mean inversion). Exact quantiles are used when the
// full sample fits in memory (the default for our simulations); the P²
// estimator supports unbounded streams (long trace replays) at O(1) space.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace hce::stats {

/// Exact sample quantile with linear interpolation (type-7, the R/NumPy
/// default). `q` in [0, 1]. Sorts a copy; prefer quantiles() for several
/// quantiles of the same sample.
double quantile(std::vector<double> sample, double q);

/// Exact quantiles for several probabilities with a single sort.
std::vector<double> quantiles(std::vector<double> sample,
                              const std::vector<double>& qs);

/// Quantile of an already-sorted sample (no copy).
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Exact quantiles for several *ascending* probabilities via a chain of
/// nth_element partial selections instead of a full sort: O(n · |qs|)
/// single-pass selection instead of O(n log n), and the returned values
/// are bit-identical to quantile_sorted on the fully sorted sample (each
/// needed order statistic is placed at its exact sorted position before
/// interpolating). Reorders `sample` in place; asserts on empty input or
/// non-ascending probabilities.
std::vector<double> quantiles_nth(std::vector<double>& sample,
                                  const std::vector<double>& qs);

/// P² (Jain & Chlamtac 1985) streaming quantile estimator: O(1) space,
/// five markers. Accurate to a few percent at the 95th/99th percentile for
/// the unimodal latency distributions produced here.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; exact until five samples have been seen.
  double value() const;
  std::size_t count() const { return count_; }
  double probability() const { return q_; }

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace hce::stats
