// Log-bucketed latency histogram (HDR-style).
//
// Buckets grow geometrically so relative resolution is constant across the
// microsecond-to-second range latencies span. Supports quantile queries,
// merge, and text rendering for the distribution figures (Fig. 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hce::stats {

class LatencyHistogram {
 public:
  /// `min_value`: lower edge of the first bucket (values below clamp into
  /// it). `buckets_per_decade`: resolution; 32 gives <7.5% relative error.
  explicit LatencyHistogram(double min_value = 1e-6,
                            int buckets_per_decade = 32,
                            int num_decades = 9);

  void add(double value);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return total_; }
  /// Quantile estimate from bucket midpoints (geometric mean of edges).
  double quantile(double q) const;
  double mean_estimate() const;

  /// Renders an ASCII sketch: one line per non-empty bucket run, with a
  /// bar proportional to density. `max_rows` caps output.
  std::string render(int max_rows = 24) const;

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  std::uint64_t bucket_count(int i) const { return counts_.at(i); }
  double bucket_lower(int i) const;
  double bucket_upper(int i) const { return bucket_lower(i + 1); }

 private:
  int bucket_index(double value) const;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace hce::stats
