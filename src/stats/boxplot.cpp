#include "stats/boxplot.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "stats/quantiles.hpp"
#include "support/contracts.hpp"

namespace hce::stats {

BoxSummary box_summary(std::vector<double> sample) {
  HCE_EXPECT(!sample.empty(), "box_summary of empty sample");
  std::sort(sample.begin(), sample.end());
  BoxSummary b;
  b.n = sample.size();
  b.min = sample.front();
  b.max = sample.back();
  b.q1 = quantile_sorted(sample, 0.25);
  b.median = quantile_sorted(sample, 0.50);
  b.q3 = quantile_sorted(sample, 0.75);
  b.mean = std::accumulate(sample.begin(), sample.end(), 0.0) /
           static_cast<double>(sample.size());
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.min;
  b.whisker_hi = b.max;
  std::size_t outliers = 0;
  for (double x : sample) {
    if (x < lo_fence || x > hi_fence) {
      ++outliers;
    }
  }
  // Whiskers extend to the most extreme points inside the fences.
  for (double x : sample) {
    if (x >= lo_fence) {
      b.whisker_lo = x;
      break;
    }
  }
  for (auto it = sample.rbegin(); it != sample.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  b.outliers = outliers;
  return b;
}

ViolinSummary violin_summary(std::vector<double> sample, int points) {
  HCE_EXPECT(!sample.empty(), "violin_summary of empty sample");
  HCE_EXPECT(points >= 2, "violin_summary needs >= 2 grid points");
  ViolinSummary v;
  v.box = box_summary(sample);

  // Silverman's rule of thumb, robust variant using min(sd, IQR/1.34).
  double mean = v.box.mean;
  double sq = 0.0;
  for (double x : sample) sq += (x - mean) * (x - mean);
  const double sd = sample.size() > 1
                        ? std::sqrt(sq / static_cast<double>(sample.size() - 1))
                        : 0.0;
  double spread = sd;
  if (v.box.iqr() > 0.0) spread = std::min(spread, v.box.iqr() / 1.34);
  if (spread <= 0.0) spread = std::max(std::abs(mean), 1e-12);
  const double h =
      0.9 * spread * std::pow(static_cast<double>(sample.size()), -0.2);
  v.bandwidth = h;

  const double lo = v.box.whisker_lo - h;
  const double hi = v.box.whisker_hi + h;
  v.grid.resize(static_cast<std::size_t>(points));
  v.density.assign(static_cast<std::size_t>(points), 0.0);
  const double norm =
      1.0 / (static_cast<double>(sample.size()) * h * std::sqrt(2.0 * M_PI));
  for (int i = 0; i < points; ++i) {
    const double g =
        lo + (hi - lo) * static_cast<double>(i) / (points - 1);
    v.grid[static_cast<std::size_t>(i)] = g;
    double d = 0.0;
    for (double x : sample) {
      const double z = (g - x) / h;
      if (std::abs(z) < 8.0) d += std::exp(-0.5 * z * z);
    }
    v.density[static_cast<std::size_t>(i)] = d * norm;
  }
  return v;
}

std::string render_violin(const ViolinSummary& v, int width, int rows) {
  std::ostringstream os;
  const int n = static_cast<int>(v.grid.size());
  const int step = std::max(1, n / rows);
  double peak = 0.0;
  for (double d : v.density) peak = std::max(peak, d);
  if (peak <= 0.0) return "(flat density)\n";
  for (int i = 0; i < n; i += step) {
    const double g = v.grid[static_cast<std::size_t>(i)];
    const double d = v.density[static_cast<std::size_t>(i)];
    const int bar = static_cast<int>(width * d / peak + 0.5);
    char label[32];
    std::snprintf(label, sizeof label, "%9.3f", g * 1e3);  // ms
    char mark = ' ';
    if (std::abs(g - v.box.median) <= (v.grid[1] - v.grid[0]) * step) {
      mark = 'M';
    } else if (std::abs(g - v.box.q1) <= (v.grid[1] - v.grid[0]) * step ||
               std::abs(g - v.box.q3) <= (v.grid[1] - v.grid[0]) * step) {
      mark = 'Q';
    }
    os << label << " " << mark << " "
       << std::string(static_cast<std::size_t>(std::min(bar, width)), '*')
       << '\n';
  }
  return os.str();
}

}  // namespace hce::stats
