// Confidence intervals for simulation output analysis.
//
// Two estimators:
//  * replication_ci — Student-t interval across independent replications
//    (the primary method: the experiment runner launches R seeded
//    replications and reports mean ± half-width).
//  * batch_means_ci — single-run batch means for long steady-state runs,
//    where consecutive observations are autocorrelated and naive CIs
//    understate variance.
// Plus a simple percentile bootstrap for non-mean statistics (e.g. p95).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/rng.hpp"

namespace hce::stats {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
  bool contains(double x) const { return x >= lower() && x <= upper(); }
};

/// Two-sided Student-t critical value for `df` degrees of freedom at
/// confidence `level` (e.g. 0.95). Uses an accurate closed approximation
/// (Cornish-Fisher style) adequate for df >= 2.
double t_critical(int df, double level = 0.95);

/// CI across independent replication means.
ConfidenceInterval replication_ci(const std::vector<double>& replication_means,
                                  double level = 0.95);

/// Batch-means CI: splits `observations` into `num_batches` contiguous
/// batches and applies a t interval across batch means. Every observation
/// is used: when the count does not divide evenly, the first
/// (size % num_batches) batches take one extra observation (batch sizes
/// differ by at most one; nothing is silently discarded).
ConfidenceInterval batch_means_ci(const std::vector<double>& observations,
                                  int num_batches = 20, double level = 0.95);

/// Percentile bootstrap CI of an arbitrary statistic of the sample.
ConfidenceInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    Rng rng, int resamples = 400, double level = 0.95);

}  // namespace hce::stats
