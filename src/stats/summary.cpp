#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace hce::stats {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::cov() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Summary::scv() const {
  const double c = cov();
  return c * c;
}

double Summary::min() const { return n_ == 0 ? 0.0 : min_; }
double Summary::max() const { return n_ == 0 ? 0.0 : max_; }

}  // namespace hce::stats
