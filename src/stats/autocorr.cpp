#include "stats/autocorr.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace hce::stats {

namespace {
double mean_of(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m += x;
  return m / static_cast<double>(v.size());
}
}  // namespace

double autocorrelation(const std::vector<double>& sample, std::size_t lag) {
  HCE_EXPECT(sample.size() >= 2, "autocorrelation: need >= 2 samples");
  HCE_EXPECT(lag < sample.size(), "autocorrelation: lag out of range");
  const double mean = mean_of(sample);
  double var = 0.0;
  for (double x : sample) var += (x - mean) * (x - mean);
  if (var <= 0.0) return lag == 0 ? 1.0 : 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < sample.size(); ++i) {
    cov += (sample[i] - mean) * (sample[i + lag] - mean);
  }
  return cov / var;
}

std::vector<double> autocorrelation_function(
    const std::vector<double>& sample, std::size_t max_lag) {
  HCE_EXPECT(max_lag < sample.size(),
             "autocorrelation_function: max_lag out of range");
  std::vector<double> acf;
  acf.reserve(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    acf.push_back(autocorrelation(sample, lag));
  }
  return acf;
}

double integrated_autocorrelation_time(const std::vector<double>& sample,
                                       std::size_t max_lag) {
  HCE_EXPECT(sample.size() >= 4, "IAT: need >= 4 samples");
  if (max_lag == 0) {
    max_lag = std::min<std::size_t>(sample.size() / 4, 2048);
  }
  max_lag = std::min(max_lag, sample.size() - 1);
  // Geyer initial positive sequence: sum pairs rho(2m-1)+rho(2m) while
  // the pair sums stay positive.
  double iat = 1.0;
  for (std::size_t m = 1; 2 * m <= max_lag; ++m) {
    const double pair = autocorrelation(sample, 2 * m - 1) +
                        autocorrelation(sample, 2 * m);
    if (pair <= 0.0) break;
    iat += 2.0 * pair;
  }
  return std::max(iat, 1.0);
}

double effective_sample_size(const std::vector<double>& sample) {
  return static_cast<double>(sample.size()) /
         integrated_autocorrelation_time(sample);
}

int suggested_batch_count(const std::vector<double>& sample) {
  HCE_EXPECT(sample.size() >= 8, "suggested_batch_count: need >= 8 samples");
  const double iat = integrated_autocorrelation_time(sample);
  const double max_batches =
      static_cast<double>(sample.size()) / (10.0 * iat);
  const int batches = static_cast<int>(std::floor(max_batches));
  return std::clamp(batches, 2, 64);
}

}  // namespace hce::stats
