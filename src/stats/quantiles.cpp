#include "stats/quantiles.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace hce::stats {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  HCE_EXPECT(!sorted.empty(), "quantile of empty sample");
  HCE_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return quantile_sorted(sample, q);
}

std::vector<double> quantiles(std::vector<double> sample,
                              const std::vector<double>& qs) {
  std::sort(sample.begin(), sample.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(sample, q));
  return out;
}

std::vector<double> quantiles_nth(std::vector<double>& sample,
                                  const std::vector<double>& qs) {
  HCE_EXPECT(!sample.empty(), "quantile of empty sample");
  const std::size_t n = sample.size();
  std::vector<double> out;
  out.reserve(qs.size());
  if (n == 1) {
    for (double q : qs) {
      HCE_EXPECT(q >= 0.0 && q <= 1.0,
                 "quantile probability must be in [0,1]");
      out.push_back(sample.front());
    }
    return out;
  }
  // The order statistics needed: each probability interpolates between
  // positions floor(pos) and floor(pos)+1 of the sorted sample.
  std::vector<std::size_t> needed;
  needed.reserve(2 * qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const double q = qs[i];
    HCE_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
    HCE_EXPECT(i == 0 || qs[i - 1] <= q,
               "quantiles_nth probabilities must be ascending");
    const double pos = q * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    needed.push_back(lo);
    needed.push_back(std::min(lo + 1, n - 1));
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  // Ascending selection chain. After placing order statistic k, the
  // prefix [0, k] holds the k+1 smallest values (position k exactly), so
  // the next selection only touches the suffix [k+1, n).
  std::size_t done = 0;  // everything before `done` is at its sorted spot
  for (const std::size_t k : needed) {
    if (k < done) continue;
    std::nth_element(sample.begin() + static_cast<std::ptrdiff_t>(done),
                     sample.begin() + static_cast<std::ptrdiff_t>(k),
                     sample.end());
    done = k + 1;
  }
  for (const double q : qs) {
    const double pos = q * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(sample[lo] + frac * (sample[hi] - sample[lo]));
  }
  return out;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  HCE_EXPECT(q > 0.0 && q < 1.0, "P2Quantile probability must be in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++count_;

  // Locate the cell containing x and update extreme markers.
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with parabolic (P²) interpolation, falling
  // back to linear when the parabolic estimate would break monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h = heights_[i];
      const double np = positions_[i + 1];
      const double nm = positions_[i - 1];
      const double n = positions_[i];
      double candidate =
          h + sign / (np - nm) *
                  ((n - nm + sign) * (hp - h) / (np - n) +
                   (np - n - sign) * (h - hm) / (n - nm));
      if (candidate <= hm || candidate >= hp) {
        // Linear fallback.
        const int j = sign > 0 ? i + 1 : i - 1;
        candidate = h + sign * (heights_[j] - h) /
                            (positions_[j] - n);
      }
      heights_[i] = candidate;
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  HCE_EXPECT(count_ > 0, "P2Quantile::value with no samples");
  if (count_ < 5) {
    std::vector<double> v(heights_.begin(),
                          heights_.begin() + static_cast<long>(count_));
    return quantile(std::move(v), q_);
  }
  return heights_[2];
}

}  // namespace hce::stats
