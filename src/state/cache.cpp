// HCE_HOT_PATH: per-lookup code — hce_lint's no-hot-path-alloc rule
// applies (see cache.hpp).
#include "state/cache.hpp"

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace hce::state {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EdgeCache::EdgeCache(std::uint64_t capacity, AdmissionPolicy admission)
    : capacity_(capacity), admission_(admission) {
  if (capacity_ > 0) {
    // Bounded: everything is sized up front, so no container ever grows
    // again — lookups and inserts are allocation-free for the lifetime of
    // the cache. Index at <= 0.5 load keeps probe chains short.
    HCE_EXPECT(capacity_ <= (1ull << 31),
               "edge cache capacity limited to 2^31 entries");
    const auto cap = static_cast<std::size_t>(capacity_);
    slab_.resize(cap);
    free_.reserve(cap);
    for (std::size_t i = cap; i-- > 0;) {
      free_.push_back(static_cast<std::uint32_t>(i));
    }
    index_.assign(next_pow2(cap < 4 ? 8 : cap * 2), kNil);
  } else {
    index_.assign(1024, kNil);
  }
  index_mask_ = index_.size() - 1;
  if (admission_ == AdmissionPolicy::kSecondHit) {
    const std::size_t n = capacity_ > 0 ? index_.size() : 4096;
    seen_keys_.assign(n, 0);
    seen_valid_.assign(n, false);
  }
}

std::size_t EdgeCache::hash_key(std::uint64_t key) {
  return static_cast<std::size_t>(splitmix64(key));
}

std::uint32_t EdgeCache::find_slot(std::uint64_t key) const {
  std::size_t pos = hash_key(key) & index_mask_;
  while (index_[pos] != kNil) {
    if (slab_[index_[pos]].key == key) return index_[pos];
    pos = (pos + 1) & index_mask_;
  }
  return kNil;
}

void EdgeCache::index_insert(std::uint64_t key, std::uint32_t slot) {
  std::size_t pos = hash_key(key) & index_mask_;
  while (index_[pos] != kNil) pos = (pos + 1) & index_mask_;
  index_[pos] = slot;
}

void EdgeCache::index_erase(std::uint64_t key) {
  std::size_t pos = hash_key(key) & index_mask_;
  while (slab_[index_[pos]].key != key) pos = (pos + 1) & index_mask_;
  // Backward-shift deletion: pull each displaced successor back into the
  // hole so probe chains stay gap-free without tombstones.
  std::size_t hole = pos;
  index_[hole] = kNil;
  std::size_t next = (hole + 1) & index_mask_;
  while (index_[next] != kNil) {
    const std::size_t ideal = hash_key(slab_[index_[next]].key) & index_mask_;
    if (((next - ideal) & index_mask_) >= ((next - hole) & index_mask_)) {
      index_[hole] = index_[next];
      index_[next] = kNil;
      hole = next;
    }
    next = (next + 1) & index_mask_;
  }
}

void EdgeCache::grow_index() {
  index_.assign(index_.size() * 2, kNil);
  index_mask_ = index_.size() - 1;
  for (std::size_t s = 0; s < slab_.size(); ++s) {
    if (slab_[s].generation & 1u) {
      index_insert(slab_[s].key, static_cast<std::uint32_t>(s));
    }
  }
}

void EdgeCache::lru_unlink(std::uint32_t slot) {
  Entry& e = slab_[slot];
  if (e.lru_prev != kNil) {
    slab_[e.lru_prev].lru_next = e.lru_next;
  } else {
    lru_head_ = e.lru_next;
  }
  if (e.lru_next != kNil) {
    slab_[e.lru_next].lru_prev = e.lru_prev;
  } else {
    lru_tail_ = e.lru_prev;
  }
  e.lru_prev = kNil;
  e.lru_next = kNil;
}

void EdgeCache::lru_push_mru(std::uint32_t slot) {
  Entry& e = slab_[slot];
  e.lru_prev = lru_tail_;
  e.lru_next = kNil;
  if (lru_tail_ != kNil) {
    slab_[lru_tail_].lru_next = slot;
  } else {
    lru_head_ = slot;
  }
  lru_tail_ = slot;
}

void EdgeCache::evict_lru() {
  const std::uint32_t slot = lru_head_;
  HCE_ASSERT(slot != kNil, "evict_lru on an empty cache");
  index_erase(slab_[slot].key);
  lru_unlink(slot);
  ++slab_[slot].generation;  // even again: frees the slot, stales handles
  free_.push_back(slot);
  --live_;
  ++stats_.evictions;
}

bool EdgeCache::admit(std::uint64_t key) {
  if (admission_ == AdmissionPolicy::kAlways) return true;
  const std::size_t pos = hash_key(key) & (seen_keys_.size() - 1);
  if (seen_valid_[pos] && seen_keys_[pos] == key) return true;
  seen_keys_[pos] = key;
  seen_valid_[pos] = true;
  return false;
}

EdgeCache::Handle EdgeCache::lookup(std::uint64_t key) {
  ++stats_.lookups;
  const std::uint32_t slot = find_slot(key);
  if (slot == kNil) {
    ++stats_.misses;
    return Handle{};
  }
  ++stats_.hits;
  lru_unlink(slot);
  lru_push_mru(slot);
  return Handle{slot, slab_[slot].generation};
}

EdgeCache::Handle EdgeCache::insert(std::uint64_t key) {
  std::uint32_t slot = find_slot(key);
  if (slot != kNil) {
    // Already resident (e.g. a concurrent pull installed it): promote.
    lru_unlink(slot);
    lru_push_mru(slot);
    return Handle{slot, slab_[slot].generation};
  }
  if (!admit(key)) {
    ++stats_.admission_rejects;
    return Handle{};
  }
  if (capacity_ > 0 && live_ == capacity_) evict_lru();
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Entry& e = slab_[slot];
  e.key = key;
  ++e.generation;  // odd: occupied
  ++live_;
  if (live_ > high_water_) high_water_ = live_;
  if (capacity_ == 0 && 2 * (live_ + 1) > index_.size()) grow_index();
  index_insert(key, slot);
  lru_push_mru(slot);
  ++stats_.insertions;
  return Handle{slot, e.generation};
}

bool EdgeCache::contains(std::uint64_t key) const {
  return find_slot(key) != kNil;
}

std::vector<std::uint64_t> EdgeCache::keys_lru_order() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(live_);
  for (std::uint32_t s = lru_head_; s != kNil; s = slab_[s].lru_next) {
    keys.push_back(slab_[s].key);
  }
  return keys;
}

}  // namespace hce::state
