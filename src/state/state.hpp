// Configuration and accounting types of the stateful-services layer.
//
// The reproduction's requests were pure compute until this layer: the
// only inversion mechanism was the paper's network-vs-wait ledger. Real
// edge platforms lose a second way — each request touches a data object,
// the edge holds a finite cache of those objects, and every miss pulls
// state from the cloud store over the very WAN links the edge deployment
// was supposed to avoid. StateSpec describes that workload (key
// popularity, cache size, pull size); PullStats accounts for the miss
// traffic. The cache itself lives in state/cache.hpp and the DES wiring
// in cluster/state_tier.hpp.
#pragma once

#include <cstdint>

#include "dist/distribution.hpp"
#include "state/cache.hpp"

namespace hce::state {

/// Knobs of the stateful workload and the edge cache tier. Disabled by
/// default: no keys are sampled, no cache is built, and the request path
/// is bit-identical to the stateless engine (pinned by the determinism
/// goldens).
struct StateSpec {
  bool enabled = false;
  /// Number of distinct data objects; requests draw keys from
  /// Zipf(zipf_theta) over [0, key_space).
  std::uint64_t key_space = 10000;
  /// Popularity skew: 0 = uniform, ~0.9-1.0 = web-like hot-key skew.
  double zipf_theta = 0.9;
  /// Entries per per-site edge cache. 0 = unbounded (every key fits once
  /// pulled — the theta-irrelevant configuration of the bit-identity
  /// test).
  std::uint64_t cache_capacity = 1024;
  /// What a miss admits into the cache.
  AdmissionPolicy admission = AdmissionPolicy::kAlways;
  /// Transfer time of the pulled object appended to the pull's response
  /// leg (object size over WAN bandwidth). Null = zero-size objects; the
  /// miss then costs exactly one pull RTT.
  dist::DistPtr pull_transfer;
};

/// Accounting of the miss path. After the calendar drains (and with no
/// stats reset mid-flight) the tier satisfies, exactly:
///
///   cache misses == issued == completed + abandoned
///
/// (folded into tests/integration/test_invariants.cpp next to Little's
/// law and the client-side offered == delivered + timeouts identity).
struct PullStats {
  std::uint64_t issued = 0;     ///< pulls started (one per cache miss)
  std::uint64_t completed = 0;  ///< objects installed, requests resumed
  std::uint64_t abandoned = 0;  ///< pull retry budget exhausted
  std::uint64_t retries = 0;    ///< re-issued pull attempts
  std::uint64_t link_drops = 0; ///< pull legs lost to WAN partitions
};

}  // namespace hce::state
