// Finite-memory edge cache: slab-backed LRU with pluggable admission.
//
// One instance models the data tier of one edge site. The design follows
// the engine's PR2 storage discipline (des::RequestPool, the calendar
// slab, RetryClient's pending table):
//
//   * entries live in a pre-sized slab with a free list — after
//     construction the steady state allocates NOTHING per lookup or
//     insert (the zero-allocation budget the bench smoke gate watches);
//   * the key index is an open-addressing, power-of-two, linear-probe
//     table with backward-shift deletion — no buckets, no per-node heap;
//   * recency is an intrusive doubly-linked list threaded through the
//     slab by 32-bit slot index;
//   * Handles are generation-tagged (slot, generation) pairs, so a handle
//     held across an eviction goes stale and misses exactly, instead of
//     aliasing whatever key reused the slot.
//
// Determinism: the cache consumes no RNG and its behavior is a pure
// function of the lookup/insert call sequence, so a cached run is exactly
// as replayable as a stateless one.
//
// HCE_HOT_PATH: per-lookup code — hce_lint's no-hot-path-alloc rule
// applies; entries live in the pre-sized slab with a free list.
#pragma once

#include <cstdint>
#include <vector>

namespace hce::state {

/// What a miss is allowed to admit into the cache.
enum class AdmissionPolicy {
  /// Every miss admits its key (classic LRU).
  kAlways,
  /// A key is admitted only on its second miss within doorkeeper memory:
  /// a fixed-size, overwrite-on-collision key filter screens one-hit
  /// wonders so scans cannot flush the hot set (TinyLFU-style doorkeeper).
  kSecondHit,
};

/// Monotone counters since the last reset_stats(). The conservation
/// identity `lookups == hits + misses` holds at every instant.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;        ///< keys admitted into the slab
  std::uint64_t evictions = 0;         ///< LRU entries displaced
  std::uint64_t admission_rejects = 0; ///< misses screened by the policy

  double hit_rate() const {
    return lookups > 0
               ? static_cast<double>(hits) / static_cast<double>(lookups)
               : 0.0;
  }

  CacheStats& operator+=(const CacheStats& o) {
    lookups += o.lookups;
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    admission_rejects += o.admission_rejects;
    return *this;
  }
};

/// LRU cache over 64-bit keys (presence only — the simulation models
/// object *residency*, the payload bytes exist only as transfer time).
class EdgeCache {
 public:
  /// Generation-tagged reference to a cache entry. Stale after the entry
  /// is evicted (or the cache cleared); valid(h) then returns false.
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;  ///< 0 = never-valid sentinel

    bool valid() const { return generation != 0; }
  };

  /// `capacity` = max resident entries; 0 = unbounded (the slab and index
  /// grow on demand — no eviction ever happens).
  explicit EdgeCache(std::uint64_t capacity,
                     AdmissionPolicy admission = AdmissionPolicy::kAlways);

  /// Counted lookup: a hit promotes the entry to most-recently-used and
  /// returns its handle; a miss returns an invalid handle. The caller
  /// decides whether the miss turns into an insert (usually after the
  /// state pull completes).
  Handle lookup(std::uint64_t key);

  /// Admits `key` (unless the admission policy rejects it), evicting the
  /// LRU entry when the cache is full. Inserting a resident key just
  /// promotes it. Returns the entry's handle, or an invalid handle on
  /// admission rejection.
  Handle insert(std::uint64_t key);

  /// True iff `h` still refers to the entry it was obtained for.
  bool valid(Handle h) const {
    return h.valid() && h.slot < slab_.size() &&
           slab_[h.slot].generation == h.generation;
  }

  /// Uncounted presence probe (tests / probes only — does not touch
  /// recency or stats).
  bool contains(std::uint64_t key) const;

  std::uint64_t capacity() const { return capacity_; }
  std::size_t size() const { return live_; }
  /// Peak resident-entry count; never exceeds capacity() when bounded.
  std::size_t slab_high_water() const { return high_water_; }
  const CacheStats& stats() const { return stats_; }
  /// Zeroes the counters; cache contents are untouched (warmup reset).
  void reset_stats() { stats_ = CacheStats{}; }

  /// Resident keys from least- to most-recently used (test helper; walks
  /// the intrusive list).
  std::vector<std::uint64_t> keys_lru_order() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint32_t generation = 0;  ///< even = free, odd = occupied
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  static std::size_t hash_key(std::uint64_t key);

  std::uint32_t find_slot(std::uint64_t key) const;  ///< kNil if absent
  void index_insert(std::uint64_t key, std::uint32_t slot);
  void index_erase(std::uint64_t key);
  void grow_index();

  void lru_unlink(std::uint32_t slot);
  void lru_push_mru(std::uint32_t slot);
  void evict_lru();
  bool admit(std::uint64_t key);

  std::uint64_t capacity_;
  AdmissionPolicy admission_;
  CacheStats stats_;

  std::vector<Entry> slab_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;

  /// Open-addressing index: slot number per probe position, kNil = empty.
  std::vector<std::uint32_t> index_;
  std::size_t index_mask_ = 0;

  std::uint32_t lru_head_ = kNil;  ///< least recently used
  std::uint32_t lru_tail_ = kNil;  ///< most recently used

  /// kSecondHit doorkeeper: recently-missed keys, overwrite-on-collision.
  std::vector<std::uint64_t> seen_keys_;
  std::vector<bool> seen_valid_;
};

}  // namespace hce::state
