// Per-component latency decomposition — the observability layer of the
// paper's core argument.
//
// The paper's inversion story (Eq. 1/2, Lemmas 3.1-3.3) is a
// *decomposition*: end-to-end latency splits into network, queueing wait,
// and service, and inversion happens precisely when the edge's queueing
// penalty (w_edge - w_cloud) outgrows its network advantage
// (n_cloud - n_edge). The des::Request already carries the full timestamp
// lineage; this module turns delivered-request records into mergeable
// per-component statistics so the mechanism can be *measured* instead of
// inferred from end-to-end numbers:
//
//   network       uplink + downlink of the delivered attempt (incl.
//                 dispatcher overhead and redirect/failover hops)
//   wait          queueing delay at the serving station
//   service       time in service
//   retry_penalty time lost to attempts that timed out or were
//                 superseded, plus the backoff gaps between them
//   state_pull    stall on edge-cache misses pulling state from the
//                 cloud store (the data-pull inversion mechanism);
//                 exactly 0 in stateless scenarios
//
// The components satisfy, per delivered request,
//
//   network + wait + service + retry_penalty + state_pull == end_to_end
//
// exactly in real arithmetic (the terms telescope over the timestamp
// lineage) and to a few ulps of the end-to-end value in doubles — pinned
// by tests/obs/test_breakdown.cpp.
//
// Everything here is passive post-processing of sink records: collecting
// a breakdown changes no simulated event, consumes no RNG draw, and is
// therefore provably additive (the seed determinism goldens pass with
// observability on).
#pragma once

#include <cstdint>
#include <vector>

#include "des/sink.hpp"
#include "stats/summary.hpp"

namespace hce::obs {

/// One latency component over a set of delivered requests: a mergeable
/// streaming summary plus exact tail quantiles, and — when the set spans
/// several replications — a Student-t interval across replication means.
struct ComponentStats {
  stats::Summary summary;  ///< mean/stddev/min/max over all samples
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Half-width of the 95% t-interval across replication means; 0 when
  /// fewer than two replications contributed samples.
  double mean_ci_half_width = 0.0;

  double mean() const { return summary.mean(); }
};

/// The five-way latency decomposition of one deployment side.
struct LatencyBreakdown {
  ComponentStats network;        ///< uplink + downlink (n)
  ComponentStats wait;           ///< queueing delay (w)
  ComponentStats service;        ///< service time (s)
  ComponentStats retry_penalty;  ///< lost attempts + backoff gaps
  ComponentStats state_pull;     ///< edge-cache miss pull stalls
  std::uint64_t samples = 0;     ///< delivered requests covered

  bool empty() const { return samples == 0; }
  /// Sum of component means — equals the mean end-to-end latency of the
  /// same delivered-request set (up to the float rounding of the records).
  double mean_total() const {
    return network.mean() + wait.mean() + service.mean() +
           retry_penalty.mean() + state_pull.mean();
  }
};

/// Breakdown over one replication's records (optionally one site). The
/// column-store overload is the fast path: component sums stream over
/// dense float columns and the percentiles come from an nth_element
/// selection chain instead of a full sort — bit-identical results either
/// way (per-component accumulation order is record order in both).
LatencyBreakdown collect_breakdown(const des::RecordColumns& records,
                                   int site = -1);

/// Row-oriented convenience overload (tests, synthetic fixtures).
LatencyBreakdown collect_breakdown(
    const std::vector<des::CompletionRecord>& records, int site = -1);

/// Convenience overload over a sink's current records.
LatencyBreakdown collect_breakdown(const des::Sink& sink, int site = -1);

/// Merged breakdown across replications: component summaries and
/// quantiles pool every delivered request; the per-component CI is the
/// replication t-interval (replications contributing zero requests are
/// excluded, matching the latency statistics of the sweep runner).
LatencyBreakdown merge_breakdown(
    const std::vector<des::RecordColumns>& replications);

/// Non-owning overload: merges the pointed-to record stores in order
/// without copying a column. The sweep runner and the adaptive engine use
/// this to (re-)merge replication outputs they keep alive elsewhere.
LatencyBreakdown merge_breakdown(
    const std::vector<const des::RecordColumns*>& replications);

/// Row-oriented convenience overload (tests, synthetic fixtures).
LatencyBreakdown merge_breakdown(
    const std::vector<std::vector<des::CompletionRecord>>& replications);

/// Deterministic merge of per-partition completion records into one
/// store: a k-way merge ordered by (t_completed, partition index). Each
/// partition's sink appends records in its own completion order, so the
/// merged order is a pure function of what completed when and where —
/// never of which worker thread ran a partition — and ties across
/// partitions break by partition index. This is the record order a
/// partitioned replication reports (the partitioned engine's analogue of
/// one sequential sink).
des::RecordColumns merge_partition_records(
    const std::vector<const des::RecordColumns*>& partitions);

}  // namespace hce::obs
