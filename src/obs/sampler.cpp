#include "obs/sampler.hpp"

#include <utility>

#include "support/contracts.hpp"

namespace hce::obs {

SamplerResult merge_partition_series(const std::vector<SamplerResult>& parts) {
  SamplerResult merged;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const SamplerResult& part = parts[p];
    if (part.empty()) continue;
    if (merged.times.empty()) {
      merged.times = part.times;
    } else {
      HCE_EXPECT(part.times == merged.times,
                 "merge_partition_series: partitions sampled on different "
                 "tick grids (start every partition's sampler with the same "
                 "interval and horizon)");
    }
    std::string prefix = "p";
    prefix += std::to_string(p);
    prefix += '/';
    for (const Series& s : part.series) {
      merged.series.push_back(Series{prefix + s.name, s.values});
    }
  }
  return merged;
}

void Sampler::add_probe(std::string name, std::function<double()> probe) {
  HCE_EXPECT(!started_, "Sampler: register probes before start()");
  Probe p;
  p.name = std::move(name);
  p.fn = std::move(probe);
  probes_.push_back(std::move(p));
}

void Sampler::add_rate_probe(std::string name,
                             std::function<double()> integral, double scale) {
  HCE_EXPECT(!started_, "Sampler: register probes before start()");
  Probe p;
  p.name = std::move(name);
  p.fn = std::move(integral);
  p.rate = true;
  p.scale = scale;
  probes_.push_back(std::move(p));
}

void Sampler::add_station_probes(const des::Station& station) {
  const des::Station* st = &station;
  add_rate_probe(station.name() + "/util", [st] { return st->busy_integral(); },
                 1.0 / static_cast<double>(station.num_servers()));
  add_probe(station.name() + "/queue", [st] {
    return static_cast<double>(st->queue_length());
  });
}

void Sampler::start(Time interval, Time until) {
  HCE_EXPECT(interval > 0.0, "Sampler: interval must be positive");
  HCE_EXPECT(!started_, "Sampler: already started");
  started_ = true;
  last_tick_ = sim_.now();
  // Pre-size every series to the exact tick count so sampling never
  // reallocates mid-run (ticks fire from now + interval up to `until`).
  const double span = until - sim_.now();
  const std::size_t ticks =
      span > 0.0 ? static_cast<std::size_t>(span / interval) + 1 : 0;
  result_.times.reserve(ticks);
  result_.series.reserve(probes_.size());
  for (Probe& p : probes_) {
    result_.series.push_back(Series{p.name, {}});
    result_.series.back().values.reserve(ticks);
    if (p.rate) p.last_integral = p.fn();
  }
  if (sim_.now() + interval > until) return;  // nothing to sample
  sim_.schedule_in(interval, [this, interval, until] {
    tick(interval, until);
  });
}

void Sampler::tick(Time interval, Time until) {
  // Ticks are pure reads: mark this event as an observer so a tick that
  // happens to fire after the last real event cannot extend the clock
  // the post-run time averages are evaluated at.
  sim_.note_observer_event();
  const Time now = sim_.now();
  const Time dt = now - last_tick_;
  result_.times.push_back(now);
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    Probe& p = probes_[i];
    double value;
    if (p.rate) {
      const double integral = p.fn();
      // A tick spanning a stats reset sees the integral jump backwards;
      // clamp that one bin to zero rather than report a negative average.
      value = (dt > 0.0 && integral >= p.last_integral)
                  ? p.scale * (integral - p.last_integral) / dt
                  : 0.0;
      p.last_integral = integral;
    } else {
      value = p.fn();
    }
    result_.series[i].values.push_back(value);
  }
  last_tick_ = now;
  if (now + interval <= until) {
    sim_.schedule_in(interval, [this, interval, until] {
      tick(interval, until);
    });
  }
}

}  // namespace hce::obs
