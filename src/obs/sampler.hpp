// Fixed-cadence time-series sampler over simulated time.
//
// Records per-station utilization, queue depth, client pending-table
// occupancy — any gauge a component exposes — at a fixed simulated-time
// cadence, producing the utilization-over-time and backlog-over-time
// series the paper's measurement methodology reports alongside latency.
//
// Two probe flavors:
//   * gauge probes   — instantaneous reads at each tick (queue depth,
//                      pending-table occupancy);
//   * rate probes    — bin averages of a piecewise-constant process, read
//                      as the *delta of its time integral* divided by the
//                      tick width. Stations already maintain exact
//                      stats::TimeWeighted integrals of busy servers and
//                      queue length, so a rate probe over busy_integral()
//                      scaled by 1/c yields the exact mean utilization in
//                      the bin, not a point sample.
//
// Determinism & additivity: ticks are ordinary calendar events whose
// handlers only *read* component state — they mutate nothing the
// simulation observes and consume no RNG draw. Interleaving sampler
// events therefore changes no reported statistic (the seed determinism
// goldens pass with sampling on, at every thread count). When no sampler
// is started the overhead is exactly zero: nothing is scheduled.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "des/simulation.hpp"
#include "des/station.hpp"
#include "support/time.hpp"

namespace hce::obs {

/// One sampled series: a named gauge with one value per sampler tick.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// A sampler's detachable output: tick timestamps plus one equal-length
/// value vector per registered probe.
struct SamplerResult {
  std::vector<Time> times;
  std::vector<Series> series;

  bool empty() const { return times.empty(); }
  const Series* find(std::string_view name) const {
    for (const Series& s : series) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

/// Deterministic merge of per-partition sampler outputs into one result.
/// Every partition of a partitioned replication starts its sampler on the
/// same (interval, until) grid, so the tick timestamps agree exactly; the
/// merged result keeps one copy of that grid and concatenates the series
/// in partition order under a "p<i>/" name prefix (shard-local station
/// names like "edge/0/util" recur in every partition). Partitions whose
/// sampler never ticked (empty result) are skipped.
SamplerResult merge_partition_series(const std::vector<SamplerResult>& parts);

class Sampler {
 public:
  explicit Sampler(des::Simulation& sim) : sim_(sim) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers an instantaneous gauge, sampled at every tick.
  void add_probe(std::string name, std::function<double()> probe);

  /// Registers a bin-average probe over a monotone time integral: each
  /// tick reports scale * (integral(now) - integral(prev)) / (now - prev).
  /// A tick spanning a stats reset (the integral jumps backwards at the
  /// end of warmup) clamps to 0 instead of reporting a negative average.
  void add_rate_probe(std::string name, std::function<double()> integral,
                      double scale = 1.0);

  /// Convenience: registers `<station name>/util` (bin-average busy
  /// fraction from the station's exact busy-server integral) and
  /// `<station name>/queue` (instantaneous queue depth).
  void add_station_probes(const des::Station& station);

  /// Starts ticking every `interval` of simulated time; the last tick
  /// fires at or before `until` (so the calendar drains). Call after all
  /// probes are registered and before Simulation::run().
  void start(Time interval, Time until);

  std::size_t num_samples() const { return result_.times.size(); }
  const SamplerResult& result() const { return result_; }
  /// Moves the accumulated series out (the sampler is then empty).
  SamplerResult take_result() { return std::move(result_); }

 private:
  struct Probe {
    std::string name;
    std::function<double()> fn;
    bool rate = false;
    double scale = 1.0;
    double last_integral = 0.0;
  };

  void tick(Time interval, Time until);

  des::Simulation& sim_;
  std::vector<Probe> probes_;
  SamplerResult result_;
  Time last_tick_ = 0.0;
  bool started_ = false;
};

}  // namespace hce::obs
