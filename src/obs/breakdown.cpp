#include "obs/breakdown.hpp"

#include <algorithm>

#include "stats/ci.hpp"
#include "stats/quantiles.hpp"

namespace hce::obs {

namespace {

constexpr int kComponents = 5;

/// p50/p95/p99 via the nth_element selection chain — values bit-identical
/// to sorting `vals` and calling quantile_sorted, without the full sort.
void finish_quantiles(std::vector<double>& vals, ComponentStats& out) {
  if (vals.empty()) return;
  const std::vector<double> qs{0.50, 0.95, 0.99};
  const std::vector<double> v = stats::quantiles_nth(vals, qs);
  out.p50 = v[0];
  out.p95 = v[1];
  out.p99 = v[2];
}

/// Scratch for one component while merging: all samples (for quantiles)
/// plus per-replication means (for the t-interval).
struct ComponentScratch {
  std::vector<double> all;
  std::vector<double> rep_means;

  void finish(ComponentStats& out) {
    if (all.empty()) return;
    finish_quantiles(all, out);
    if (rep_means.size() >= 2) {
      out.mean_ci_half_width = stats::replication_ci(rep_means).half_width;
    }
  }
};

/// The five component columns of a record store, in decomposition order.
void component_columns(const des::RecordColumns& rc,
                       const std::vector<float>* cols[kComponents]) {
  cols[0] = &rc.network;
  cols[1] = &rc.waiting;
  cols[2] = &rc.service;
  cols[3] = &rc.retry_penalty;
  cols[4] = &rc.state_pull;
}

void component_stats(LatencyBreakdown& b, ComponentStats* comps[kComponents]) {
  comps[0] = &b.network;
  comps[1] = &b.wait;
  comps[2] = &b.service;
  comps[3] = &b.retry_penalty;
  comps[4] = &b.state_pull;
}

}  // namespace

LatencyBreakdown collect_breakdown(const des::RecordColumns& records,
                                   int site) {
  LatencyBreakdown b;
  const std::vector<float>* cols[kComponents];
  ComponentStats* comps[kComponents];
  component_columns(records, cols);
  component_stats(b, comps);

  const std::size_t n = records.size();
  std::vector<double> vals;
  if (site < 0) {
    b.samples = n;
    vals.reserve(n);
    for (int c = 0; c < kComponents; ++c) {
      // Dense widen of the whole column, then one streaming-summary pass
      // (record order, matching the row-wise accumulation bit-for-bit)
      // and the selection-chain percentiles over the same buffer.
      vals.assign(cols[c]->begin(), cols[c]->end());
      for (const double x : vals) comps[c]->summary.add(x);
      finish_quantiles(vals, *comps[c]);
    }
    return b;
  }
  std::vector<std::uint32_t> idx;
  idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (records.site[i] == site) idx.push_back(static_cast<std::uint32_t>(i));
  }
  b.samples = idx.size();
  vals.reserve(idx.size());
  for (int c = 0; c < kComponents; ++c) {
    vals.clear();
    for (const std::uint32_t i : idx) vals.push_back((*cols[c])[i]);
    for (const double x : vals) comps[c]->summary.add(x);
    finish_quantiles(vals, *comps[c]);
  }
  return b;
}

LatencyBreakdown collect_breakdown(
    const std::vector<des::CompletionRecord>& records, int site) {
  des::RecordColumns rc;
  rc.reserve(records.size());
  for (const des::CompletionRecord& r : records) rc.push_back(r);
  return collect_breakdown(rc, site);
}

LatencyBreakdown collect_breakdown(const des::Sink& sink, int site) {
  return collect_breakdown(sink.records(), site);
}

LatencyBreakdown merge_breakdown(
    const std::vector<des::RecordColumns>& replications) {
  std::vector<const des::RecordColumns*> ptrs;
  ptrs.reserve(replications.size());
  for (const des::RecordColumns& rep : replications) ptrs.push_back(&rep);
  return merge_breakdown(ptrs);
}

LatencyBreakdown merge_breakdown(
    const std::vector<const des::RecordColumns*>& replications) {
  LatencyBreakdown b;
  ComponentStats* comps[kComponents];
  component_stats(b, comps);
  ComponentScratch scratch[kComponents];

  for (const des::RecordColumns* rp : replications) {
    const des::RecordColumns& rep = *rp;
    if (rep.empty()) continue;  // matches merge_side: empty reps excluded
    const std::vector<float>* cols[kComponents];
    component_columns(rep, cols);
    for (int c = 0; c < kComponents; ++c) {
      stats::Summary rep_sum;
      for (const float xf : *cols[c]) {
        const double x = xf;
        comps[c]->summary.add(x);
        rep_sum.add(x);
        scratch[c].all.push_back(x);
      }
      scratch[c].rep_means.push_back(rep_sum.mean());
    }
    b.samples += rep.size();
  }
  for (int c = 0; c < kComponents; ++c) scratch[c].finish(*comps[c]);
  return b;
}

des::RecordColumns merge_partition_records(
    const std::vector<const des::RecordColumns*>& partitions) {
  des::RecordColumns merged;
  const std::size_t p_count = partitions.size();
  std::size_t total = 0;
  for (const des::RecordColumns* p : partitions) total += p->size();
  merged.reserve(total);

  // Each partition's store is already completion-ordered, so a cursor per
  // partition suffices; the linear min-scan is fine at realistic P (< 64).
  std::vector<std::size_t> cur(p_count, 0);
  for (std::size_t done = 0; done < total; ++done) {
    std::size_t best = p_count;
    Time best_t = 0.0;
    for (std::size_t p = 0; p < p_count; ++p) {
      if (cur[p] >= partitions[p]->size()) continue;
      const Time t = partitions[p]->t_completed[cur[p]];
      if (best == p_count || t < best_t) {  // ties keep the lowest p
        best = p;
        best_t = t;
      }
    }
    merged.push_back((*partitions[best])[cur[best]]);
    ++cur[best];
  }
  return merged;
}

LatencyBreakdown merge_breakdown(
    const std::vector<std::vector<des::CompletionRecord>>& replications) {
  std::vector<des::RecordColumns> cols(replications.size());
  for (std::size_t i = 0; i < replications.size(); ++i) {
    cols[i].reserve(replications[i].size());
    for (const des::CompletionRecord& r : replications[i]) {
      cols[i].push_back(r);
    }
  }
  return merge_breakdown(cols);
}

}  // namespace hce::obs
