#include "obs/breakdown.hpp"

#include <algorithm>

#include "stats/ci.hpp"
#include "stats/quantiles.hpp"

namespace hce::obs {

namespace {

constexpr int kComponents = 5;

/// Scratch for one component while merging: all samples (for quantiles)
/// plus per-replication means (for the t-interval).
struct ComponentScratch {
  std::vector<double> all;
  std::vector<double> rep_means;

  void finish(ComponentStats& out) {
    if (all.empty()) return;
    std::sort(all.begin(), all.end());
    out.p50 = stats::quantile_sorted(all, 0.50);
    out.p95 = stats::quantile_sorted(all, 0.95);
    out.p99 = stats::quantile_sorted(all, 0.99);
    if (rep_means.size() >= 2) {
      out.mean_ci_half_width = stats::replication_ci(rep_means).half_width;
    }
  }
};

struct Extractor {
  double (*get)(const des::CompletionRecord&);
};

double get_network(const des::CompletionRecord& r) { return r.network; }
double get_wait(const des::CompletionRecord& r) { return r.waiting; }
double get_service(const des::CompletionRecord& r) { return r.service; }
double get_retry(const des::CompletionRecord& r) { return r.retry_penalty; }
double get_pull(const des::CompletionRecord& r) { return r.state_pull; }

}  // namespace

LatencyBreakdown collect_breakdown(
    const std::vector<des::CompletionRecord>& records, int site) {
  LatencyBreakdown b;
  std::vector<double> net, wait, svc, retry, pull;
  for (const des::CompletionRecord& r : records) {
    if (site >= 0 && r.site != site) continue;
    ++b.samples;
    b.network.summary.add(r.network);
    b.wait.summary.add(r.waiting);
    b.service.summary.add(r.service);
    b.retry_penalty.summary.add(r.retry_penalty);
    b.state_pull.summary.add(r.state_pull);
    net.push_back(r.network);
    wait.push_back(r.waiting);
    svc.push_back(r.service);
    retry.push_back(r.retry_penalty);
    pull.push_back(r.state_pull);
  }
  ComponentStats* comps[kComponents] = {&b.network, &b.wait, &b.service,
                                        &b.retry_penalty, &b.state_pull};
  std::vector<double>* vals[kComponents] = {&net, &wait, &svc, &retry, &pull};
  for (int c = 0; c < kComponents; ++c) {
    if (vals[c]->empty()) continue;
    std::sort(vals[c]->begin(), vals[c]->end());
    comps[c]->p50 = stats::quantile_sorted(*vals[c], 0.50);
    comps[c]->p95 = stats::quantile_sorted(*vals[c], 0.95);
    comps[c]->p99 = stats::quantile_sorted(*vals[c], 0.99);
  }
  return b;
}

LatencyBreakdown collect_breakdown(const des::Sink& sink, int site) {
  return collect_breakdown(sink.records(), site);
}

LatencyBreakdown merge_breakdown(
    const std::vector<std::vector<des::CompletionRecord>>& replications) {
  LatencyBreakdown b;
  const Extractor extract[kComponents] = {{&get_network},
                                          {&get_wait},
                                          {&get_service},
                                          {&get_retry},
                                          {&get_pull}};
  ComponentStats* comps[kComponents] = {&b.network, &b.wait, &b.service,
                                        &b.retry_penalty, &b.state_pull};
  ComponentScratch scratch[kComponents];

  for (const auto& rep : replications) {
    if (rep.empty()) continue;  // matches merge_side: empty reps excluded
    stats::Summary rep_sum[kComponents];
    for (const des::CompletionRecord& r : rep) {
      for (int c = 0; c < kComponents; ++c) {
        const double x = extract[c].get(r);
        comps[c]->summary.add(x);
        rep_sum[c].add(x);
        scratch[c].all.push_back(x);
      }
    }
    for (int c = 0; c < kComponents; ++c) {
      scratch[c].rep_means.push_back(rep_sum[c].mean());
    }
    b.samples += rep.size();
  }
  for (int c = 0; c < kComponents; ++c) scratch[c].finish(*comps[c]);
  return b;
}

}  // namespace hce::obs
