#include "cost/meter.hpp"

#include "support/contracts.hpp"

namespace hce::cost {

double egress_bytes(const WanCounters& wan, const CostSpec& spec) {
  return static_cast<double>(wan.request_sends) * spec.request_bytes +
         static_cast<double>(wan.response_sends) * spec.response_bytes +
         static_cast<double>(wan.pull_request_sends) * spec.pull_request_bytes +
         static_cast<double>(wan.pull_response_sends) *
             spec.pull_response_bytes;
}

Bill price_usage(const Usage& usage, const CostSpec& spec,
                 const core::PriceModel& price) {
  HCE_EXPECT(usage.elapsed_seconds >= 0.0,
             "price_usage: negative measurement window");
  Bill bill;
  bill.edge_server_dollars = core::cost_of_server_seconds(
      usage.edge.provisioned_seconds, price.edge_server_hour);
  bill.cloud_server_dollars = core::cost_of_server_seconds(
      usage.cloud.provisioned_seconds, price.cloud_server_hour);
  bill.site_rental_dollars = core::cost_of_server_seconds(
      usage.edge_site_seconds, price.edge_site_rental_hour);
  bill.egress_bytes = egress_bytes(usage.wan, spec);
  bill.egress_dollars = bill.egress_bytes / 1e9 * price.egress_per_gb;
  bill.rental_interval_dollars =
      static_cast<double>(usage.rented_server_intervals) *
      price.edge_rental_interval_fee;
  bill.total_dollars = bill.edge_server_dollars + bill.cloud_server_dollars +
                       bill.site_rental_dollars + bill.egress_dollars +
                       bill.rental_interval_dollars;
  bill.dollars_per_hour = usage.elapsed_seconds > 0.0
                              ? bill.total_dollars /
                                    (usage.elapsed_seconds / 3600.0)
                              : 0.0;
  return bill;
}

}  // namespace hce::cost
