// Raw resource counters of the simulation-metered cost layer.
//
// The paper's stated future work is the *economic* cost of preventing
// performance inversion; pricing it honestly requires metering what a
// simulated deployment actually consumes, not what a closed form says it
// should. These are the raw, price-free signals the deployments and
// cross-partition hubs accumulate:
//
//   * WanCounters — one increment per WAN link crossing, stamped at the
//     instant a transport issues the send (RetryClient attempts, state
//     pulls, hybrid offload forwards, response legs), so retries and
//     duplicate responses are billed like any other packet. Sends are
//     counted *before* the link-partition drop check: the bytes leave the
//     NIC whether or not the WAN delivers them.
//   * ServerTime — busy and provisioned server-second integrals. The
//     provisioned integral is what an operator pays for: it keeps
//     accruing through fault downtime (crashed hardware still costs
//     money) and follows DynamicStation's max(target, busy) during
//     autoscaling drains.
//
// Metering is pure observation: counters are plain integer/float
// accumulators bumped at existing state-change points — no calendar
// events, no RNG draws — so a metered run is bit-identical to an
// unmetered one (the observe-on determinism goldens pin this).
#pragma once

#include <cstdint>

namespace hce::cost {

/// WAN link crossings by flow. Edge access links are local and free; the
/// WAN flows are the cloud uplink/downlink, the hybrid's offload forward
/// and cloud response legs, and the state-pull request/response legs.
struct WanCounters {
  /// Client->cloud request attempts (one per RetryClient attempt, so
  /// request_sends == offered + retries) plus hybrid offload forwards.
  std::uint64_t request_sends = 0;
  /// Cloud->client response legs (one per cloud-served completion,
  /// including responses that arrive as duplicates after a retry).
  std::uint64_t response_sends = 0;
  /// Site->store pull attempts (one per pull-client attempt).
  std::uint64_t pull_request_sends = 0;
  /// Store->site pull response legs (object transfers).
  std::uint64_t pull_response_sends = 0;

  WanCounters& operator+=(const WanCounters& o) {
    request_sends += o.request_sends;
    response_sends += o.response_sends;
    pull_request_sends += o.pull_request_sends;
    pull_response_sends += o.pull_response_sends;
    return *this;
  }
};

/// Busy and provisioned server-second integrals since the last stats
/// reset. provisioned >= busy always; the gap is paid-for idleness.
struct ServerTime {
  double busy_seconds = 0.0;
  double provisioned_seconds = 0.0;

  ServerTime& operator+=(const ServerTime& o) {
    busy_seconds += o.busy_seconds;
    provisioned_seconds += o.provisioned_seconds;
    return *this;
  }
};

/// Everything one deployment consumed over one measurement window —
/// the Meter's input, collected per replication (or per partition and
/// merged in partition order).
struct Usage {
  /// Servers at edge micro data centers (edge sites, hybrid local sites,
  /// elastic fleets).
  ServerTime edge;
  /// Servers in hyperscale cloud regions (consolidated cloud, hybrid
  /// overflow pool).
  ServerTime cloud;
  /// Integral of occupied edge sites over time (site-count x seconds):
  /// the rack-rental premium axis, billed per site-hour regardless of
  /// how many servers the site hosts.
  double edge_site_seconds = 0.0;
  /// The measurement window the integrals above cover (warmup reset to
  /// collection). Denominator of every $/hour rate.
  double elapsed_seconds = 0.0;
  WanCounters wan;
  /// Rented server-intervals committed by an elastic fleet's control
  /// loop (sum of per-site targets over control ticks) — the per-
  /// transaction fee axis of interval-renting policies.
  std::uint64_t rented_server_intervals = 0;

  Usage& operator+=(const Usage& o) {
    edge += o.edge;
    cloud += o.cloud;
    edge_site_seconds += o.edge_site_seconds;
    elapsed_seconds += o.elapsed_seconds;
    wan += o.wan;
    rented_server_intervals += o.rented_server_intervals;
    return *this;
  }
};

}  // namespace hce::cost
