// Pricing of metered usage: CostSpec (wire sizes), Bill (the priced
// result), and the Meter that folds per-replication / per-partition
// Usage into one deterministic total.
//
// Division of labour with core/economics: `core::cost_to_meet_slo` is
// the *analytic* planner — closed-form M/M/k capacity at a price — while
// the Meter prices what a simulation *actually* consumed, so faults,
// retries, cache misses, and autoscaling show up in the bill. In the
// fault-free Markovian limit the two agree (bench_cost_pareto
// cross-checks this); everywhere else the gap IS the hidden cost.
#pragma once

#include <cstdint>

#include "core/economics.hpp"
#include "cost/counters.hpp"

namespace hce::cost {

/// Wire sizes for the WAN flows the meter counts. Defaults model a small
/// request RPC with a bulky response (e.g. media/inference payloads) and
/// a key-value state tier with small pull requests and object-sized pull
/// responses.
struct CostSpec {
  double request_bytes = 1.5e3;        ///< client->server request
  double response_bytes = 150.0e3;     ///< server->client response payload
  double pull_request_bytes = 500.0;   ///< site->store state-pull request
  double pull_response_bytes = 64.0e3; ///< store->site state object
};

/// Total WAN bytes implied by the counters under `spec`.
double egress_bytes(const WanCounters& wan, const CostSpec& spec);

/// One deployment's priced usage over one measurement window.
struct Bill {
  double edge_server_dollars = 0.0;   ///< provisioned edge server-time
  double cloud_server_dollars = 0.0;  ///< provisioned cloud server-time
  double site_rental_dollars = 0.0;   ///< edge rack-rental premium
  double egress_dollars = 0.0;        ///< WAN bytes at $/GB
  double rental_interval_dollars = 0.0;  ///< per-interval rental fees
  double total_dollars = 0.0;
  /// total normalized by the measurement window — the comparable rate
  /// (mean across replications, since usage sums windows).
  double dollars_per_hour = 0.0;
  double egress_bytes = 0.0;
};

/// Prices `usage` under `spec` wire sizes and `price` rates. Server time
/// is billed on the PROVISIONED integral (busy is informational): the
/// operator pays for allocated capacity, idle or crashed alike.
Bill price_usage(const Usage& usage, const CostSpec& spec,
                 const core::PriceModel& price);

/// Accumulates Usage and prices the running total. Pure arithmetic over
/// already-collected counters — owning a Meter never perturbs a
/// simulation. Deterministic merge: callers add per-replication (and,
/// inside one replication, per-partition) usage in a fixed order; since
/// addition happens on the raw counters and pricing once at the end,
/// the result is bit-stable for a fixed add order.
class Meter {
 public:
  Meter() = default;
  Meter(const CostSpec& spec, const core::PriceModel& price)
      : spec_(spec), price_(price) {}

  void add(const Usage& usage) { total_ += usage; }

  const Usage& usage() const { return total_; }
  Bill bill() const { return price_usage(total_, spec_, price_); }

 private:
  CostSpec spec_;
  core::PriceModel price_;
  Usage total_;
};

/// What `SideStats` carries: the summed raw usage and its priced bill.
struct SideCost {
  Usage usage;
  Bill bill;
};

}  // namespace hce::cost
