// ElasticEdge: an edge deployment whose per-site fleets are controlled by
// an autoscaling policy at a fixed control interval.
//
// Implements the abstract cluster::Deployment interface (submit / sink /
// per-site stats) so experiments can swap a static edge for an elastic
// one, and adds the control loop: per-site EWMA arrival-rate estimators,
// periodic policy evaluation with a scale-down cooldown, provisioning
// delay for scale-up, and server-seconds accounting for the economics
// module. The shared cluster::RetryClient provides the client-side
// timeout/retry/backoff loop with ring failover around crashed sites —
// the same machinery (and the same offered == delivered + timeouts
// identity) as the static deployments.
#pragma once

#include <memory>
#include <vector>

#include "autoscale/dynamic_station.hpp"
#include "autoscale/policy.hpp"
#include "cluster/client.hpp"
#include "cluster/deployment_base.hpp"
#include "cluster/network.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "des/sink.hpp"
#include "faults/fault.hpp"
#include "support/rng.hpp"

namespace hce::autoscale {

struct ElasticEdgeConfig {
  int num_sites = 5;
  int initial_servers_per_site = 1;
  double speed = 1.0;
  cluster::NetworkModel network = cluster::NetworkModel::fixed(0.001);
  Rate mu = 13.0;  ///< per-server service rate (passed to observations)

  PolicyPtr policy;                 ///< required
  Time control_interval = 30.0;     ///< policy evaluation period
  /// Last control tick fires at or before this time. The control loop
  /// self-reschedules, so with an infinite horizon the event calendar
  /// never drains — run the simulation with run(until) in that case.
  Time control_horizon = kTimeInfinity;
  Time provision_delay = 60.0;      ///< scale-up boot time
  Time scale_down_cooldown = 120.0; ///< min time between scale-downs
  /// EWMA smoothing for the arrival-rate estimate, per control tick.
  double rate_ewma_alpha = 0.3;

  // --- Fault handling ---------------------------------------------------
  /// Client-side timeout/retry/backoff. When `retry.failover` is set,
  /// arrivals at a crashed site reroute to the next-nearest up site (ring
  /// order, one inter_site_rtt/2 hop each), and timed-out attempts are
  /// re-issued against the next-nearest up site.
  cluster::RetryPolicy retry;
  /// Per-site access-link degradation schedules (empty = all healthy;
  /// otherwise one entry per site, null entries allowed).
  std::vector<std::shared_ptr<const faults::LinkSchedule>> site_link_faults;
  /// Round-trip penalty per failover hop (inter-site distance).
  Time inter_site_rtt = 0.020;
};

class ElasticEdge final : public cluster::Deployment {
 public:
  ElasticEdge(des::Simulation& sim, ElasticEdgeConfig cfg, Rng rng);

  /// Client in region req.site issues the request now.
  void submit(des::Request req) override;

  des::Sink& sink() override { return sink_; }
  const des::Sink& sink() const override { return sink_; }
  DynamicStation& site(int i) {
    return *sites_.at(static_cast<std::size_t>(i));
  }
  int num_sites() const override { return cfg_.num_sites; }
  /// Crashes/recovers one site's hardware (graceful autoscaling state —
  /// targets, pending boots — survives the outage).
  void set_site_up(int site, bool up) override;

  /// Total server-seconds consumed across sites since last reset.
  double server_seconds() const;
  /// Mean utilization across sites (busy/provisioned).
  double utilization() const override;
  double site_utilization(int i) const override {
    return sites_.at(static_cast<std::size_t>(i))->utilization();
  }
  std::uint64_t completed() const override;
  /// Requests black-holed or killed at crashed sites.
  std::uint64_t dropped() const override;
  /// Crash-failover hops (reroutes around down sites).
  std::uint64_t failovers() const override { return failover_count_; }
  const cluster::ClientStats& client_stats() const override {
    return client_.stats();
  }
  /// Current provisioned servers across all sites.
  int provisioned_servers() const;
  /// Scaling actions applied (target changes).
  std::uint64_t scaling_actions() const { return scaling_actions_; }
  /// Server-intervals committed by the control loop since the last reset:
  /// each control tick adds every site's post-decision target. Priced by
  /// PriceModel::edge_rental_interval_fee for rental-policy studies.
  std::uint64_t rented_server_intervals() const {
    return rented_server_intervals_;
  }
  /// Elastic fleet server-time (provisioned = the DynamicStation
  /// integrals, which keep accruing through crashes and drains), site
  /// rental, and the rented-interval count.
  cost::Usage cost_usage() const override;
  void reset_stats() override;
  /// Per-site busy-rate/queue/provisioned probes plus
  /// `elastic-edge/client_pending` (DynamicStations are not des::Stations,
  /// so utilization is reported as bin-average busy servers instead of a
  /// busy fraction — the denominator varies as the fleet scales).
  void instrument(obs::Sampler& sampler) const override;

  const ElasticEdgeConfig& config() const { return cfg_; }

 private:
  // Retry-client hooks, bound statically (no virtual dispatch per event).
  friend class cluster::BasicRetryClient<ElasticEdge>;
  void client_send(des::Request req, int target);
  int client_retry_target(const des::Request& req, int prev_target);

  void arrive_at_site(des::Request req, int site_index);
  /// Next up site in ring order after `from`; -1 if every site is down.
  int next_up_site(int from) const;
  const faults::LinkSchedule* link_schedule(int site) const;
  void control_tick();

  des::Simulation& sim_;
  ElasticEdgeConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<DynamicStation>> sites_;
  des::Sink sink_;
  /// In-flight request payloads (uplink/downlink legs, failover hops):
  /// calendar handlers capture 4-byte pool handles, not Requests.
  des::RequestPool pool_;

  // Control state.
  std::vector<std::uint64_t> arrivals_at_last_tick_;
  std::vector<double> rate_estimate_;
  std::vector<double> busy_integral_at_last_tick_;
  std::vector<double> provisioned_integral_at_last_tick_;
  std::vector<Time> last_scale_down_;
  std::uint64_t scaling_actions_ = 0;
  std::uint64_t failover_count_ = 0;
  std::uint64_t rented_server_intervals_ = 0;
  Time stats_epoch_ = 0.0;
  cluster::BasicRetryClient<ElasticEdge> client_;
};

}  // namespace hce::autoscale
