// ElasticEdge: an edge deployment whose per-site fleets are controlled by
// an autoscaling policy at a fixed control interval.
//
// Mirrors cluster::EdgeDeployment's request interface (submit / sink /
// per-site stats) so experiments can swap a static edge for an elastic
// one, and adds the control loop: per-site EWMA arrival-rate estimators,
// periodic policy evaluation with a scale-down cooldown, provisioning
// delay for scale-up, and server-seconds accounting for the economics
// module.
#pragma once

#include <memory>
#include <vector>

#include "autoscale/dynamic_station.hpp"
#include "autoscale/policy.hpp"
#include "cluster/network.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "des/sink.hpp"
#include "support/rng.hpp"

namespace hce::autoscale {

struct ElasticEdgeConfig {
  int num_sites = 5;
  int initial_servers_per_site = 1;
  double speed = 1.0;
  cluster::NetworkModel network = cluster::NetworkModel::fixed(0.001);
  Rate mu = 13.0;  ///< per-server service rate (passed to observations)

  PolicyPtr policy;                 ///< required
  Time control_interval = 30.0;     ///< policy evaluation period
  /// Last control tick fires at or before this time. The control loop
  /// self-reschedules, so with an infinite horizon the event calendar
  /// never drains — run the simulation with run(until) in that case.
  Time control_horizon = kTimeInfinity;
  Time provision_delay = 60.0;      ///< scale-up boot time
  Time scale_down_cooldown = 120.0; ///< min time between scale-downs
  /// EWMA smoothing for the arrival-rate estimate, per control tick.
  double rate_ewma_alpha = 0.3;
};

class ElasticEdge {
 public:
  ElasticEdge(des::Simulation& sim, ElasticEdgeConfig cfg, Rng rng);

  /// Client in region req.site issues the request now.
  void submit(des::Request req);

  des::Sink& sink() { return sink_; }
  const des::Sink& sink() const { return sink_; }
  DynamicStation& site(int i) {
    return *sites_.at(static_cast<std::size_t>(i));
  }
  int num_sites() const { return cfg_.num_sites; }

  /// Total server-seconds consumed across sites since last reset.
  double server_seconds() const;
  /// Mean utilization across sites (busy/provisioned).
  double utilization() const;
  /// Current provisioned servers across all sites.
  int provisioned_servers() const;
  /// Scaling actions applied (target changes).
  std::uint64_t scaling_actions() const { return scaling_actions_; }
  void reset_stats();

  const ElasticEdgeConfig& config() const { return cfg_; }

 private:
  void control_tick();

  des::Simulation& sim_;
  ElasticEdgeConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<DynamicStation>> sites_;
  des::Sink sink_;
  /// In-flight request payloads (uplink/downlink legs): calendar handlers
  /// capture 4-byte pool handles, not Requests.
  des::RequestPool pool_;

  // Control state.
  std::vector<std::uint64_t> arrivals_at_last_tick_;
  std::vector<double> rate_estimate_;
  std::vector<double> busy_integral_at_last_tick_;
  std::vector<double> provisioned_integral_at_last_tick_;
  std::vector<Time> last_scale_down_;
  std::uint64_t scaling_actions_ = 0;
};

}  // namespace hce::autoscale
