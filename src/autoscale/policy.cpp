#include "autoscale/policy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/capacity.hpp"
#include "support/contracts.hpp"

namespace hce::autoscale {

namespace {

class StaticPolicy final : public Policy {
 public:
  explicit StaticPolicy(int servers) : servers_(servers) {
    HCE_EXPECT(servers >= 1, "static policy needs >= 1 server");
  }
  int target_servers(const SiteObservation&) const override {
    return servers_;
  }
  std::string name() const override {
    return "static(" + std::to_string(servers_) + ")";
  }

 private:
  int servers_;
};

class ReactivePolicy final : public Policy {
 public:
  ReactivePolicy(double hi, double lo, int step)
      : hi_(hi), lo_(lo), step_(step) {
    HCE_EXPECT(0.0 < lo && lo < hi && hi < 1.0,
               "reactive policy needs 0 < lo < hi < 1");
    HCE_EXPECT(step >= 1, "reactive policy step >= 1");
  }
  int target_servers(const SiteObservation& obs) const override {
    if (obs.recent_utilization > hi_) return obs.provisioned + step_;
    if (obs.recent_utilization < lo_) {
      return std::max(1, obs.provisioned - step_);
    }
    return obs.provisioned;
  }
  std::string name() const override { return "reactive"; }

 private:
  double hi_, lo_;
  int step_;
};

class TwoSigmaPolicy final : public Policy {
 public:
  int target_servers(const SiteObservation& obs) const override {
    HCE_EXPECT(obs.mu > 0.0, "two-sigma policy: mu > 0");
    const double peak =
        obs.rate_estimate + 2.0 * std::sqrt(std::max(obs.rate_estimate, 0.0));
    return std::max(1, static_cast<int>(std::ceil(peak / obs.mu)));
  }
  std::string name() const override { return "two-sigma"; }
};

class InversionAwarePolicy final : public Policy {
 public:
  explicit InversionAwarePolicy(InversionAwareConfig cfg) : cfg_(cfg) {
    HCE_EXPECT(cfg.mu > 0.0, "inversion-aware policy: mu > 0");
    HCE_EXPECT(cfg.k_cloud >= 1, "inversion-aware policy: k_cloud >= 1");
    HCE_EXPECT(cfg.delta_n >= 0.0, "inversion-aware policy: delta_n >= 0");
    HCE_EXPECT(cfg.headroom >= 1.0, "inversion-aware policy: headroom >= 1");
  }
  int target_servers(const SiteObservation& obs) const override {
    if (obs.rate_estimate <= 0.0) return 1;
    core::SiteProvisionParams p;
    p.lambda_site = obs.rate_estimate;
    p.lambda_total = std::max(obs.total_rate_estimate, obs.rate_estimate);
    p.mu = cfg_.mu;
    p.k_cloud = cfg_.k_cloud;
    p.delta_n = cfg_.delta_n;
    p.overprovision_factor = cfg_.headroom;
    // If the estimated aggregate would overload the cloud comparator,
    // cap the cloud utilization used in the bound at just-below-one.
    if (p.lambda_total >= p.mu * p.k_cloud) {
      p.lambda_total = 0.99 * p.mu * p.k_cloud;
    }
    const int k_i = core::min_edge_servers(p);
    return std::max(1, k_i);
  }
  std::string name() const override { return "inversion-aware"; }

 private:
  InversionAwareConfig cfg_;
};

/// Servers needed to hold utilization at `target_util` for the current
/// demand estimate; the sizing shared by both rental policies.
int rental_demand(const SiteObservation& obs, double target_util) {
  HCE_EXPECT(obs.mu > 0.0, "rental policy: mu > 0");
  const double need =
      std::max(obs.rate_estimate, 0.0) / (obs.mu * target_util);
  return std::max(1, static_cast<int>(std::ceil(need)));
}

class RentalFixedIntervalPolicy final : public Policy {
 public:
  explicit RentalFixedIntervalPolicy(double target_util)
      : target_util_(target_util) {
    HCE_EXPECT(0.0 < target_util && target_util < 1.0,
               "rental policy target_util in (0, 1)");
  }
  int target_servers(const SiteObservation& obs) const override {
    return rental_demand(obs, target_util_);
  }
  std::string name() const override { return "rental-fixed-interval"; }

 private:
  double target_util_;
};

class RentalRetentionPolicy final : public Policy {
 public:
  RentalRetentionPolicy(double target_util, Time retention)
      : target_util_(target_util), retention_(retention) {
    HCE_EXPECT(0.0 < target_util && target_util < 1.0,
               "rental policy target_util in (0, 1)");
    HCE_EXPECT(retention >= 0.0, "rental retention must be >= 0");
  }
  int target_servers(const SiteObservation& obs) const override {
    const int demand = rental_demand(obs, target_util_);
    // Per-site timers in a shared-const policy: mutable is safe because a
    // deployment (and its policy instance) is single-threaded under one
    // simulation, and the timers are plain control state — reading the
    // observation draws no RNG and schedules nothing.
    const auto s = static_cast<std::size_t>(obs.site);
    if (s >= hold_until_.size()) hold_until_.resize(s + 1, -kTimeInfinity);
    if (demand >= obs.provisioned) {
      // The rented capacity is (still) needed: extend its retention.
      hold_until_[s] = obs.now + retention_;
      return demand;
    }
    // Demand fell below the rental: hold until the timer expires, then
    // release down to demand in one step.
    return obs.now < hold_until_[s] ? obs.provisioned : demand;
  }
  std::string name() const override { return "rental-retention"; }

 private:
  double target_util_;
  Time retention_;
  mutable std::vector<Time> hold_until_;
};

}  // namespace

PolicyPtr static_policy(int servers) {
  return std::make_shared<StaticPolicy>(servers);
}

PolicyPtr reactive_policy(double util_high, double util_low, int step) {
  return std::make_shared<ReactivePolicy>(util_high, util_low, step);
}

PolicyPtr two_sigma_policy() { return std::make_shared<TwoSigmaPolicy>(); }

PolicyPtr inversion_aware_policy(InversionAwareConfig cfg) {
  return std::make_shared<InversionAwarePolicy>(cfg);
}

PolicyPtr rental_fixed_interval_policy(double target_util) {
  return std::make_shared<RentalFixedIntervalPolicy>(target_util);
}

PolicyPtr rental_retention_policy(double target_util, Time retention) {
  return std::make_shared<RentalRetentionPolicy>(target_util, retention);
}

}  // namespace hce::autoscale
