#include "autoscale/elastic_edge.hpp"

#include <numeric>

#include "obs/sampler.hpp"
#include "support/contracts.hpp"

namespace hce::autoscale {

ElasticEdge::ElasticEdge(des::Simulation& sim, ElasticEdgeConfig cfg, Rng rng)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      client_(sim, cfg_.retry, *this) {
  HCE_EXPECT(cfg_.num_sites >= 1, "elastic edge needs >= 1 site");
  HCE_EXPECT(cfg_.initial_servers_per_site >= 1,
             "elastic edge needs >= 1 initial server per site");
  HCE_EXPECT(cfg_.policy != nullptr, "elastic edge needs a policy");
  HCE_EXPECT(cfg_.control_interval > 0.0,
             "elastic edge control interval must be positive");
  HCE_EXPECT(cfg_.rate_ewma_alpha > 0.0 && cfg_.rate_ewma_alpha <= 1.0,
             "elastic edge EWMA alpha in (0, 1]");
  HCE_EXPECT(cfg_.site_link_faults.empty() ||
                 static_cast<int>(cfg_.site_link_faults.size()) ==
                     cfg_.num_sites,
             "site_link_faults must be empty or one entry per site");

  const auto n = static_cast<std::size_t>(cfg_.num_sites);
  sites_.reserve(n);
  for (int s = 0; s < cfg_.num_sites; ++s) {
    sites_.push_back(std::make_unique<DynamicStation>(
        sim, "elastic-edge/" + std::to_string(s),
        cfg_.initial_servers_per_site, cfg_.speed, s));
    sites_.back()->set_completion_handler([this](const des::Request& done) {
      Time extra = 0.0;
      const faults::LinkSchedule* ls = link_schedule(done.station_id);
      if (ls != nullptr) {
        if (ls->partitioned(sim_.now())) {
          client_.count_link_drop();  // response lost; timeout recovers
          return;
        }
        extra = ls->extra_one_way(sim_.now());
      }
      const Time downlink = cfg_.network.one_way(rng_) + extra;
      const auto h = pool_.put(des::Request(done));
      sim_.schedule_in(downlink, [this, h] {
        des::Request r = pool_.take(h);
        r.t_completed = sim_.now();
        if (client_.on_response(r)) sink_.record(r);
      });
    });
  }
  arrivals_at_last_tick_.assign(n, 0);
  rate_estimate_.assign(n, 0.0);
  busy_integral_at_last_tick_.assign(n, 0.0);
  provisioned_integral_at_last_tick_.assign(n, 0.0);
  last_scale_down_.assign(n, -1e18);

  sim_.schedule_in(cfg_.control_interval, [this] { control_tick(); });
}

const faults::LinkSchedule* ElasticEdge::link_schedule(int site) const {
  if (cfg_.site_link_faults.empty() || site < 0 ||
      site >= static_cast<int>(cfg_.site_link_faults.size())) {
    return nullptr;
  }
  return cfg_.site_link_faults[static_cast<std::size_t>(site)].get();
}

int ElasticEdge::next_up_site(int from) const {
  for (int d = 1; d < cfg_.num_sites; ++d) {
    const int s = (from + d) % cfg_.num_sites;
    if (sites_[static_cast<std::size_t>(s)]->is_up()) return s;
  }
  return -1;
}

void ElasticEdge::arrive_at_site(des::Request req, int site_index) {
  auto& station = *sites_[static_cast<std::size_t>(site_index)];
  if (!station.is_up() && cfg_.retry.failover) {
    // Reroute around the crashed site to the next-nearest up one, paying
    // one inter-site hop. If every site is down the request black-holes
    // at the local station (counted in dropped()) and the client timeout
    // takes over.
    const int target = next_up_site(site_index);
    if (target >= 0) {
      ++failover_count_;
      const Time hop = cfg_.inter_site_rtt / 2.0;
      const auto h = pool_.put(std::move(req));
      sim_.schedule_in(hop, [this, target, h] {
        arrive_at_site(pool_.take(h), target);
      });
      return;
    }
  }
  station.arrive(std::move(req));
}

void ElasticEdge::submit(des::Request req) {
  HCE_EXPECT(req.site >= 0 && req.site < cfg_.num_sites,
             "elastic edge submit: request site out of range");
  const int target = req.site;  // requests are pinned to their home site
  client_.submit(std::move(req), target);
}

void ElasticEdge::client_send(des::Request req, int target) {
  Time extra = 0.0;
  const faults::LinkSchedule* ls = link_schedule(target);
  if (ls != nullptr) {
    if (ls->partitioned(sim_.now())) {
      client_.count_link_drop();  // lost in transit; the timeout recovers it
      return;
    }
    extra = ls->extra_one_way(sim_.now());
  }
  const Time uplink = cfg_.network.one_way(rng_) + extra;
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, target, h] {
    arrive_at_site(pool_.take(h), target);
  });
}

int ElasticEdge::client_retry_target(const des::Request& req,
                                     int prev_target) {
  int target = req.site;
  if (cfg_.retry.failover) {
    const int next = next_up_site(prev_target);
    target = next >= 0 ? next : prev_target;
  }
  return target;
}

void ElasticEdge::set_site_up(int site, bool up) {
  sites_.at(static_cast<std::size_t>(site))->set_up(up);
}

void ElasticEdge::control_tick() {
  const Time dt = cfg_.control_interval;

  // Refresh the per-site rate estimates and compute the aggregate.
  double total_estimate = 0.0;
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const std::uint64_t arrivals = sites_[s]->arrivals();
    const double observed_rate =
        static_cast<double>(arrivals - arrivals_at_last_tick_[s]) / dt;
    arrivals_at_last_tick_[s] = arrivals;
    rate_estimate_[s] = cfg_.rate_ewma_alpha * observed_rate +
                        (1.0 - cfg_.rate_ewma_alpha) * rate_estimate_[s];
    total_estimate += rate_estimate_[s];
  }

  for (std::size_t s = 0; s < sites_.size(); ++s) {
    auto& site = *sites_[s];
    const double busy = site.busy_seconds();
    const double provisioned = site.server_seconds();
    const double busy_delta = busy - busy_integral_at_last_tick_[s];
    const double prov_delta =
        provisioned - provisioned_integral_at_last_tick_[s];
    busy_integral_at_last_tick_[s] = busy;
    provisioned_integral_at_last_tick_[s] = provisioned;

    SiteObservation obs;
    obs.now = sim_.now();
    obs.site = static_cast<int>(s);
    obs.provisioned = site.provisioned_servers();
    obs.recent_utilization = prov_delta > 0.0 ? busy_delta / prov_delta : 0.0;
    obs.rate_estimate = rate_estimate_[s];
    obs.total_rate_estimate = total_estimate;
    obs.queue_length = site.queue_length();
    obs.mu = cfg_.mu;

    const int target = cfg_.policy->target_servers(obs);
    const int current = site.target_servers();
    if (target > current) {
      site.set_target_servers(target, cfg_.provision_delay);
      ++scaling_actions_;
    } else if (target < current) {
      if (sim_.now() - last_scale_down_[s] >= cfg_.scale_down_cooldown) {
        site.set_target_servers(target);
        last_scale_down_[s] = sim_.now();
        ++scaling_actions_;
      }
    }
    // The post-decision target is the rental committed for the coming
    // interval (counts the cooldown-held fleet too: held capacity is
    // still rented capacity).
    rented_server_intervals_ +=
        static_cast<std::uint64_t>(site.target_servers());
  }

  if (sim_.now() + dt <= cfg_.control_horizon) {
    sim_.schedule_in(dt, [this] { control_tick(); });
  }
}

double ElasticEdge::server_seconds() const {
  double total = 0.0;
  for (const auto& s : sites_) total += s->server_seconds();
  return total;
}

double ElasticEdge::utilization() const {
  double busy = 0.0, provisioned = 0.0;
  for (const auto& s : sites_) {
    busy += s->busy_seconds();
    provisioned += s->server_seconds();
  }
  return provisioned > 0.0 ? busy / provisioned : 0.0;
}

int ElasticEdge::provisioned_servers() const {
  int n = 0;
  for (const auto& s : sites_) n += s->provisioned_servers();
  return n;
}

std::uint64_t ElasticEdge::completed() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s->completed();
  return n;
}

std::uint64_t ElasticEdge::dropped() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s->dropped_arrivals() + s->killed();
  return n;
}

void ElasticEdge::reset_stats() {
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    sites_[s]->reset_stats();
    arrivals_at_last_tick_[s] = 0;
    busy_integral_at_last_tick_[s] = 0.0;
    provisioned_integral_at_last_tick_[s] = 0.0;
  }
  scaling_actions_ = 0;
  failover_count_ = 0;
  rented_server_intervals_ = 0;
  stats_epoch_ = sim_.now();
  client_.reset_stats();
}

cost::Usage ElasticEdge::cost_usage() const {
  cost::Usage u;
  u.elapsed_seconds = sim_.now() - stats_epoch_;
  for (const auto& s : sites_) {
    u.edge.busy_seconds += s->busy_seconds();
    u.edge.provisioned_seconds += s->server_seconds();
  }
  u.edge_site_seconds =
      static_cast<double>(cfg_.num_sites) * u.elapsed_seconds;
  u.rented_server_intervals = rented_server_intervals_;
  return u;
}

void ElasticEdge::instrument(obs::Sampler& sampler) const {
  for (const auto& s : sites_) {
    const DynamicStation* st = s.get();
    // Bin-average busy servers (not a fraction: the provisioned-server
    // denominator changes as the autoscaler acts).
    sampler.add_rate_probe(st->name() + "/busy",
                           [st] { return st->busy_seconds(); });
    sampler.add_probe(st->name() + "/queue", [st] {
      return static_cast<double>(st->queue_length());
    });
    sampler.add_probe(st->name() + "/provisioned", [st] {
      return static_cast<double>(st->provisioned_servers());
    });
  }
  sampler.add_probe("elastic-edge/client_pending", [this] {
    return static_cast<double>(client_.pending_in_flight());
  });
}

}  // namespace hce::autoscale
