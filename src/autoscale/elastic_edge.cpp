#include "autoscale/elastic_edge.hpp"

#include <numeric>

#include "support/contracts.hpp"

namespace hce::autoscale {

ElasticEdge::ElasticEdge(des::Simulation& sim, ElasticEdgeConfig cfg, Rng rng)
    : sim_(sim), cfg_(std::move(cfg)), rng_(std::move(rng)) {
  HCE_EXPECT(cfg_.num_sites >= 1, "elastic edge needs >= 1 site");
  HCE_EXPECT(cfg_.initial_servers_per_site >= 1,
             "elastic edge needs >= 1 initial server per site");
  HCE_EXPECT(cfg_.policy != nullptr, "elastic edge needs a policy");
  HCE_EXPECT(cfg_.control_interval > 0.0,
             "elastic edge control interval must be positive");
  HCE_EXPECT(cfg_.rate_ewma_alpha > 0.0 && cfg_.rate_ewma_alpha <= 1.0,
             "elastic edge EWMA alpha in (0, 1]");

  const auto n = static_cast<std::size_t>(cfg_.num_sites);
  sites_.reserve(n);
  for (int s = 0; s < cfg_.num_sites; ++s) {
    sites_.push_back(std::make_unique<DynamicStation>(
        sim, "elastic-edge/" + std::to_string(s),
        cfg_.initial_servers_per_site, cfg_.speed, s));
    sites_.back()->set_completion_handler([this](const des::Request& done) {
      const Time downlink = cfg_.network.one_way(rng_);
      const auto h = pool_.put(des::Request(done));
      sim_.schedule_in(downlink, [this, h] {
        des::Request r = pool_.take(h);
        r.t_completed = sim_.now();
        sink_.record(r);
      });
    });
  }
  arrivals_at_last_tick_.assign(n, 0);
  rate_estimate_.assign(n, 0.0);
  busy_integral_at_last_tick_.assign(n, 0.0);
  provisioned_integral_at_last_tick_.assign(n, 0.0);
  last_scale_down_.assign(n, -1e18);

  sim_.schedule_in(cfg_.control_interval, [this] { control_tick(); });
}

void ElasticEdge::submit(des::Request req) {
  HCE_EXPECT(req.site >= 0 && req.site < cfg_.num_sites,
             "elastic edge submit: request site out of range");
  req.t_created = sim_.now();
  const int target = req.site;
  const Time uplink = cfg_.network.one_way(rng_);
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, target, h] {
    sites_[static_cast<std::size_t>(target)]->arrive(pool_.take(h));
  });
}

void ElasticEdge::control_tick() {
  const Time dt = cfg_.control_interval;

  // Refresh the per-site rate estimates and compute the aggregate.
  double total_estimate = 0.0;
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const std::uint64_t arrivals = sites_[s]->arrivals();
    const double observed_rate =
        static_cast<double>(arrivals - arrivals_at_last_tick_[s]) / dt;
    arrivals_at_last_tick_[s] = arrivals;
    rate_estimate_[s] = cfg_.rate_ewma_alpha * observed_rate +
                        (1.0 - cfg_.rate_ewma_alpha) * rate_estimate_[s];
    total_estimate += rate_estimate_[s];
  }

  for (std::size_t s = 0; s < sites_.size(); ++s) {
    auto& site = *sites_[s];
    const double busy = site.busy_seconds();
    const double provisioned = site.server_seconds();
    const double busy_delta = busy - busy_integral_at_last_tick_[s];
    const double prov_delta =
        provisioned - provisioned_integral_at_last_tick_[s];
    busy_integral_at_last_tick_[s] = busy;
    provisioned_integral_at_last_tick_[s] = provisioned;

    SiteObservation obs;
    obs.now = sim_.now();
    obs.provisioned = site.provisioned_servers();
    obs.recent_utilization = prov_delta > 0.0 ? busy_delta / prov_delta : 0.0;
    obs.rate_estimate = rate_estimate_[s];
    obs.total_rate_estimate = total_estimate;
    obs.queue_length = site.queue_length();
    obs.mu = cfg_.mu;

    const int target = cfg_.policy->target_servers(obs);
    const int current = site.target_servers();
    if (target > current) {
      site.set_target_servers(target, cfg_.provision_delay);
      ++scaling_actions_;
    } else if (target < current) {
      if (sim_.now() - last_scale_down_[s] >= cfg_.scale_down_cooldown) {
        site.set_target_servers(target);
        last_scale_down_[s] = sim_.now();
        ++scaling_actions_;
      }
    }
  }

  if (sim_.now() + dt <= cfg_.control_horizon) {
    sim_.schedule_in(dt, [this] { control_tick(); });
  }
}

double ElasticEdge::server_seconds() const {
  double total = 0.0;
  for (const auto& s : sites_) total += s->server_seconds();
  return total;
}

double ElasticEdge::utilization() const {
  double busy = 0.0, provisioned = 0.0;
  for (const auto& s : sites_) {
    busy += s->busy_seconds();
    provisioned += s->server_seconds();
  }
  return provisioned > 0.0 ? busy / provisioned : 0.0;
}

int ElasticEdge::provisioned_servers() const {
  int n = 0;
  for (const auto& s : sites_) n += s->provisioned_servers();
  return n;
}

void ElasticEdge::reset_stats() {
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    sites_[s]->reset_stats();
    arrivals_at_last_tick_[s] = 0;
    busy_integral_at_last_tick_[s] = 0.0;
    provisioned_integral_at_last_tick_[s] = 0.0;
  }
  scaling_actions_ = 0;
}

}  // namespace hce::autoscale
