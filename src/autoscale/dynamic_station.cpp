#include "autoscale/dynamic_station.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace hce::autoscale {

DynamicStation::DynamicStation(des::Simulation& sim, std::string name,
                               int initial_servers, double speed,
                               int station_id)
    : sim_(sim),
      name_(std::move(name)),
      speed_(speed),
      station_id_(station_id),
      target_(initial_servers),
      busy_tw_(sim.now()),
      provisioned_tw_(sim.now(), static_cast<double>(initial_servers)) {
  HCE_EXPECT(initial_servers >= 1, "dynamic station needs >= 1 server");
  HCE_EXPECT(speed > 0.0, "dynamic station speed must be positive");
}

void DynamicStation::set_completion_handler(CompletionHandler handler) {
  on_complete_ = std::move(handler);
}

int DynamicStation::provisioned_servers() const {
  return std::max(target_, busy_);
}

void DynamicStation::update_provisioned() {
  provisioned_tw_.set(sim_.now(), static_cast<double>(provisioned_servers()));
}

void DynamicStation::arrive(des::Request req) {
  HCE_EXPECT(req.service_demand >= 0.0,
             "request service demand must be non-negative");
  if (!up_) {
    // Crashed site: the request is black-holed. The client never hears
    // back; its timeout/retry policy (cluster layer) is what recovers it.
    ++dropped_;
    return;
  }
  req.t_arrival = sim_.now();
  req.station_id = station_id_;
  ++arrivals_;
  queue_.push_back(std::move(req));
  try_start_service();
}

void DynamicStation::try_start_service() {
  while (busy_ < target_ && !queue_.empty()) {
    des::Request req = std::move(queue_.front());
    queue_.pop_front();
    req.t_start = sim_.now();
    req.served_by = busy_;
    ++busy_;
    busy_tw_.set(sim_.now(), static_cast<double>(busy_));
    update_provisioned();
    const Time service_time = req.service_demand / speed_;
    const auto h = in_service_.put(std::move(req));
    const auto ev = sim_.schedule_in(service_time, [this, h] {
      des::Request r = in_service_.take(h);
      forget_in_flight(h);
      r.t_departure = sim_.now();
      --busy_;
      busy_tw_.set(sim_.now(), static_cast<double>(busy_));
      update_provisioned();
      ++completed_;
      try_start_service();
      if (on_complete_) on_complete_(r);
    });
    active_.push_back(InFlight{h, ev});
  }
}

void DynamicStation::forget_in_flight(des::RequestPool::Handle h) {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].handle == h) {
      active_[i] = active_.back();
      active_.pop_back();
      return;
    }
  }
  HCE_ASSERT(false, "dynamic station: unknown in-flight handle");
}

void DynamicStation::set_up(bool up) {
  if (up == up_) return;
  if (!up) {
    // Crash: cancel every in-service completion, reclaim the pooled
    // payloads, drop the queue. Draining/booting state is untouched —
    // recovery brings the fleet back at the current target.
    for (const InFlight& f : active_) {
      sim_.cancel(f.event);
      (void)in_service_.take(f.handle);  // killed payload; discard
      ++killed_;
    }
    active_.clear();
    busy_ = 0;
    busy_tw_.set(sim_.now(), 0.0);
    update_provisioned();
    killed_ += queue_.size();
    queue_.clear();
    up_ = false;
  } else {
    up_ = true;  // servers recover idle; target is unchanged
  }
}

void DynamicStation::set_target_servers(int target, Time provision_delay) {
  HCE_EXPECT(target >= 1, "dynamic station target must be >= 1");
  if (target <= target_) {
    // Graceful scale-down: no preemption; draining happens naturally as
    // busy_ falls below the new target. Also abandons any servers still
    // booting (bump the generation so pending scale-ups are void).
    target_ = target;
    ++scale_generation_;
    update_provisioned();
    return;
  }
  if (provision_delay <= 0.0) {
    target_ = target;
    update_provisioned();
    try_start_service();
    return;
  }
  ++pending_scaleups_;
  const std::uint64_t generation = scale_generation_;
  sim_.schedule_in(provision_delay, [this, target, generation] {
    --pending_scaleups_;
    // A scale-down issued while this server was booting wins.
    if (generation == scale_generation_ && target > target_) {
      target_ = target;
      update_provisioned();
      try_start_service();
    }
  });
}

double DynamicStation::server_seconds() const {
  return provisioned_tw_.integral(sim_.now());
}

double DynamicStation::busy_seconds() const {
  return busy_tw_.integral(sim_.now());
}

double DynamicStation::utilization() const {
  const double provisioned = provisioned_tw_.integral(sim_.now());
  if (provisioned <= 0.0) return 0.0;
  return busy_tw_.integral(sim_.now()) / provisioned;
}

void DynamicStation::reset_stats() {
  busy_tw_.reset(sim_.now());
  provisioned_tw_.reset(sim_.now());
  completed_ = 0;
  arrivals_ = 0;
  dropped_ = 0;
  killed_ = 0;
}

}  // namespace hce::autoscale
