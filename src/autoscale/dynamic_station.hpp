// FCFS station with a runtime-adjustable server count.
//
// The substrate for dynamic edge resource allocation (the paper's §7
// future work). Semantics chosen to match how real autoscaled fleets
// behave:
//  * scale-up takes effect immediately after an optional provisioning
//    delay (new servers start pulling from the queue);
//  * scale-down is graceful: in-flight requests finish (no preemption),
//    the fleet drains to the new target as jobs complete;
//  * accounting charges for provisioned-or-draining servers, i.e.
//    max(target, busy) — a draining server still costs money.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "stats/timeweighted.hpp"

namespace hce::autoscale {

class DynamicStation {
 public:
  using CompletionHandler = std::function<void(const des::Request&)>;

  DynamicStation(des::Simulation& sim, std::string name, int initial_servers,
                 double speed = 1.0, int station_id = -1);

  void set_completion_handler(CompletionHandler handler);
  void arrive(des::Request req);

  // --- Fault injection ----------------------------------------------------
  /// Whole-station crash / recovery (same semantics as des::Station):
  /// crashing cancels every in-service completion, drops the queue, and
  /// counts both in killed(); recovery restores the fleet idle at the
  /// current target. Arrivals while down are black-holed (the client-side
  /// timeout/retry layer recovers them). Idempotent.
  void set_up(bool up);
  bool is_up() const { return up_; }
  /// Arrivals black-holed because the station was down.
  std::uint64_t dropped_arrivals() const { return dropped_; }
  /// Requests killed mid-service or dropped from the queue by a crash.
  std::uint64_t killed() const { return killed_; }

  /// Sets the provisioned server target (>= 1). Takes effect after
  /// `provision_delay` for scale-up (booting a server takes time);
  /// scale-down is immediate but graceful.
  void set_target_servers(int target, Time provision_delay = 0.0);

  int target_servers() const { return target_; }
  /// Servers currently costing money: max(target, busy).
  int provisioned_servers() const;
  int busy_servers() const { return busy_; }
  std::size_t queue_length() const { return queue_.size(); }
  std::size_t in_system() const {
    return queue_.size() + static_cast<std::size_t>(busy_);
  }
  const std::string& name() const { return name_; }

  // --- Accounting --------------------------------------------------------
  /// Integral of provisioned servers over time since last reset — the
  /// server-seconds an operator pays for.
  double server_seconds() const;
  /// Integral of busy servers over time since last reset.
  double busy_seconds() const;
  /// Time-average utilization: busy integral / provisioned integral.
  double utilization() const;
  std::uint64_t completed() const { return completed_; }
  std::uint64_t arrivals() const { return arrivals_; }
  void reset_stats();

 private:
  void try_start_service();
  void update_provisioned();
  void forget_in_flight(des::RequestPool::Handle h);

  des::Simulation& sim_;
  std::string name_;
  double speed_;
  int station_id_;
  CompletionHandler on_complete_;

  int target_ = 1;
  int busy_ = 0;
  std::deque<des::Request> queue_;
  /// In-service request payloads: the completion event captures a 4-byte
  /// pool handle so the handler fits the calendar's inline buffer.
  des::RequestPool in_service_;
  /// One entry per in-service request, so a crash can cancel every
  /// completion event and reclaim every pooled payload.
  struct InFlight {
    des::RequestPool::Handle handle;
    des::Simulation::EventId event;
  };
  std::vector<InFlight> active_;
  bool up_ = true;
  std::uint64_t completed_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t killed_ = 0;
  std::uint64_t pending_scaleups_ = 0;
  /// Bumped on every scale-down; voids in-flight (booting) scale-ups.
  std::uint64_t scale_generation_ = 0;

  stats::TimeWeighted busy_tw_;
  stats::TimeWeighted provisioned_tw_;
};

}  // namespace hce::autoscale
