// Autoscaling policies for edge sites.
//
// Each control tick the controller hands the policy a SiteObservation and
// applies the returned server target. Four policies spanning the design
// space the paper's discussion implies:
//
//  * Static           — fixed fleet (the paper's experimental setup).
//  * Reactive         — classic threshold rules on recent utilization
//                       (scale out above hi, in below lo), the default in
//                       commercial autoscalers.
//  * TwoSigma         — predictive: provision for the estimated 95th
//                       percentile of demand, lambda_hat + 2 sqrt(
//                       lambda_hat), per §5.2's peak rule.
//  * InversionAware   — provisions each site via Eq. 22 so the site's
//                       Lemma 3.1 bound stays below the deployment's
//                       delta_n — capacity explicitly targeted at never
//                       inverting against the cloud (the paper's future-
//                       work proposal), plus a headroom factor.
//
// Plus two online edge-*rental* policies (à la "Renting Edge Computing
// Resources for Service Hosting"): the operator rents servers from an
// edge market by the control interval, so the policy sizes the rental to
// keep utilization at a target rather than stepping from the current
// fleet. The cost layer bills each committed interval through
// PriceModel::edge_rental_interval_fee (see cost/counters.hpp):
//
//  * RentalFixedInterval — memoryless: each interval rents exactly
//                       ceil(rate / (mu * target_util)) servers, rising
//                       and falling with the demand estimate.
//  * RentalRetention  — same demand sizing, but releases are deferred by
//                       a retention timer: capacity rented once is held
//                       for `retention` after it was last needed, trading
//                       rental dollars for immunity to demand flicker.
#pragma once

#include <memory>
#include <string>

#include "support/time.hpp"

namespace hce::autoscale {

struct SiteObservation {
  Time now = 0.0;
  /// Site index within the deployment — lets per-site policy state (the
  /// retention timers) live in one shared policy instance.
  int site = 0;
  int provisioned = 1;
  /// Utilization over the last control interval.
  double recent_utilization = 0.0;
  /// EWMA arrival-rate estimate for this site (req/s).
  Rate rate_estimate = 0.0;
  /// EWMA arrival-rate estimate for the whole deployment.
  Rate total_rate_estimate = 0.0;
  std::size_t queue_length = 0;
  Rate mu = 13.0;  ///< per-server service rate
};

class Policy {
 public:
  virtual ~Policy() = default;
  /// Desired provisioned server count (>= 1).
  virtual int target_servers(const SiteObservation& obs) const = 0;
  virtual std::string name() const = 0;
};

using PolicyPtr = std::shared_ptr<const Policy>;

/// Fixed fleet of n servers.
PolicyPtr static_policy(int servers);

/// Threshold rules: +step when recent utilization > hi, -step when < lo.
PolicyPtr reactive_policy(double util_high = 0.8, double util_low = 0.4,
                          int step = 1);

/// Two-sigma predictive provisioning: ceil((l + 2 sqrt(l)) / mu) servers
/// for rate estimate l.
PolicyPtr two_sigma_policy();

struct InversionAwareConfig {
  Rate mu = 13.0;
  int k_cloud = 5;          ///< cloud fleet this edge competes with
  Time delta_n = 0.024;     ///< network advantage of the edge
  double headroom = 1.0;    ///< multiplier on the Eq. 22 answer
};

/// Eq. 22-driven provisioning (see core/capacity.hpp).
PolicyPtr inversion_aware_policy(InversionAwareConfig cfg);

/// Fixed-interval rental: every control tick rent exactly
/// ceil(rate_estimate / (mu * target_util)) servers (>= 1), releasing
/// the rest. Pair with scale_down_cooldown = 0 — the interval IS the
/// commitment; an extra cooldown would double-count the hysteresis.
PolicyPtr rental_fixed_interval_policy(double target_util = 0.7);

/// Retention-timer rental: sizes the rental like the fixed-interval
/// policy, but a site's capacity is only released after `retention`
/// seconds have passed since demand last reached the rented level.
/// One policy instance keeps per-site timers (keyed by
/// SiteObservation::site); use a fresh instance per deployment.
PolicyPtr rental_retention_policy(double target_util = 0.7,
                                  Time retention = 300.0);

}  // namespace hce::autoscale
