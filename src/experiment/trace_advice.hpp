// Trace-to-advisor bridge: the "will my workload invert?" one-liner.
//
// Chains workload::analyze() into core::advise(): the trace supplies the
// arrival rates, spatial weights, and both SCVs; the caller supplies only
// the deployment geometry (RTTs, servers per site, cloud size). This is
// the workflow the paper's practical-takeaway sections imply: measure
// your workload, plug it into the rules of thumb.
#pragma once

#include "core/advisor.hpp"
#include "workload/analysis.hpp"
#include "workload/trace.hpp"

namespace hce::experiment {

struct TraceDeploymentGeometry {
  Time edge_rtt = 0.001;
  Time cloud_rtt = 0.025;
  int servers_per_site = 1;
  /// Cloud servers; 0 = one per edge server (the paper's construction).
  int cloud_servers = 0;
  /// Per-server service rate; 0 = infer from the trace's mean service
  /// demand (1 / mean).
  Rate mu = 0.0;
};

/// Builds the advisor input from measured trace statistics.
core::DeploymentSpec deployment_spec_from_trace(
    const workload::TraceStats& stats,
    const TraceDeploymentGeometry& geometry);

/// Convenience: analyze + build + advise in one call.
core::AdvisorReport advise_from_trace(const workload::Trace& trace,
                                      const TraceDeploymentGeometry& geometry);

}  // namespace hce::experiment
