#include "experiment/report.hpp"

#include <fstream>
#include <sstream>

#include "support/contracts.hpp"

namespace hce::experiment {

TextTable sweep_table(const std::vector<PointResult>& sweep) {
  TextTable t({"req/s/server", "util_edge", "util_cloud", "edge_mean_ms",
               "edge_p50_ms", "edge_p95_ms", "edge_p99_ms", "cloud_mean_ms",
               "cloud_p50_ms", "cloud_p95_ms", "cloud_p99_ms",
               "edge_ci_ms", "cloud_ci_ms"});
  for (const auto& p : sweep) {
    t.row()
        .add(p.rate_per_server, 2)
        .add(p.edge.utilization, 3)
        .add(p.cloud.utilization, 3)
        .add_ms(p.edge.mean, 3)
        .add_ms(p.edge.p50, 3)
        .add_ms(p.edge.p95, 3)
        .add_ms(p.edge.p99, 3)
        .add_ms(p.cloud.mean, 3)
        .add_ms(p.cloud.p50, 3)
        .add_ms(p.cloud.p95, 3)
        .add_ms(p.cloud.p99, 3)
        .add_ms(p.edge.mean_ci_half_width, 3)
        .add_ms(p.cloud.mean_ci_half_width, 3);
  }
  return t;
}

std::string sweep_csv(const std::vector<PointResult>& sweep) {
  return sweep_table(sweep).csv();
}

namespace {

/// Renders a table as GitHub-flavored Markdown from its CSV cells (one
/// source of truth for cell formatting).
std::string table_markdown(const TextTable& t) {
  std::istringstream csv(t.csv());
  std::ostringstream md;
  std::string line;
  bool header = true;
  while (std::getline(csv, line)) {
    md << "| ";
    for (char c : line) {
      if (c == ',') {
        md << " | ";
      } else {
        md << c;
      }
    }
    md << " |\n";
    if (header) {
      header = false;
      std::size_t cols = 1;
      for (char c : line) {
        if (c == ',') ++cols;
      }
      md << "|";
      for (std::size_t i = 0; i < cols; ++i) md << "---|";
      md << "\n";
    }
  }
  return md.str();
}

}  // namespace

std::string sweep_markdown(const std::vector<PointResult>& sweep) {
  return table_markdown(sweep_table(sweep));
}

TextTable breakdown_table(const std::vector<PointResult>& sweep) {
  TextTable t({"req/s/server", "edge_net_ms", "edge_wait_ms", "edge_svc_ms",
               "edge_retry_ms", "edge_pull_ms", "cloud_net_ms",
               "cloud_wait_ms", "cloud_svc_ms", "cloud_retry_ms",
               "cloud_pull_ms", "wait_penalty_ms", "net_advantage_ms"});
  for (const auto& p : sweep) {
    const obs::LatencyBreakdown& e = p.edge.breakdown;
    const obs::LatencyBreakdown& c = p.cloud.breakdown;
    t.row()
        .add(p.rate_per_server, 2)
        .add_ms(e.network.mean(), 3)
        .add_ms(e.wait.mean(), 3)
        .add_ms(e.service.mean(), 3)
        .add_ms(e.retry_penalty.mean(), 3)
        .add_ms(e.state_pull.mean(), 3)
        .add_ms(c.network.mean(), 3)
        .add_ms(c.wait.mean(), 3)
        .add_ms(c.service.mean(), 3)
        .add_ms(c.retry_penalty.mean(), 3)
        .add_ms(c.state_pull.mean(), 3)
        // The paper's inversion ledger (Eq. 1/2): the edge inverts once
        // its queueing (plus data-pull) penalty outgrows its network
        // advantage.
        .add_ms(e.wait.mean() - c.wait.mean(), 3)
        .add_ms(c.network.mean() - e.network.mean(), 3);
  }
  return t;
}

std::string breakdown_csv(const std::vector<PointResult>& sweep) {
  return breakdown_table(sweep).csv();
}

std::string breakdown_markdown(const std::vector<PointResult>& sweep) {
  return table_markdown(breakdown_table(sweep));
}

TextTable cost_table(const std::vector<PointResult>& sweep) {
  TextTable t({"req/s/server", "edge_dph", "edge_server_dph",
               "edge_site_dph", "edge_egress_dph", "edge_egress_gb",
               "cloud_dph", "cloud_server_dph", "cloud_egress_dph",
               "cloud_egress_gb", "edge_p99_ms", "cloud_p99_ms"});
  for (const auto& p : sweep) {
    const cost::Bill& e = p.edge.cost.bill;
    const cost::Bill& c = p.cloud.cost.bill;
    const double e_hours = p.edge.cost.usage.elapsed_seconds / 3600.0;
    const double c_hours = p.cloud.cost.usage.elapsed_seconds / 3600.0;
    // Per-component $/h shares the bill's elapsed denominator; the
    // interval fee (zero unless priced) rides in the total only.
    const auto per_hour = [](double dollars, double hours) {
      return hours > 0.0 ? dollars / hours : 0.0;
    };
    t.row()
        .add(p.rate_per_server, 2)
        .add(e.dollars_per_hour, 4)
        .add(per_hour(e.edge_server_dollars + e.cloud_server_dollars,
                      e_hours),
             4)
        .add(per_hour(e.site_rental_dollars, e_hours), 4)
        .add(per_hour(e.egress_dollars, e_hours), 4)
        .add(e.egress_bytes / 1e9, 4)
        .add(c.dollars_per_hour, 4)
        .add(per_hour(c.edge_server_dollars + c.cloud_server_dollars,
                      c_hours),
             4)
        .add(per_hour(c.egress_dollars, c_hours), 4)
        .add(c.egress_bytes / 1e9, 4)
        .add_ms(p.edge.p99, 3)
        .add_ms(p.cloud.p99, 3);
  }
  return t;
}

std::string cost_csv(const std::vector<PointResult>& sweep) {
  return cost_table(sweep).csv();
}

std::string cost_markdown(const std::vector<PointResult>& sweep) {
  return table_markdown(cost_table(sweep));
}

void save_sweep_csv(const std::vector<PointResult>& sweep,
                    const std::string& path) {
  std::ofstream os(path);
  HCE_EXPECT(os.good(), "cannot open sweep CSV for writing: " + path);
  os << sweep_csv(sweep);
  HCE_EXPECT(os.good(), "failed writing sweep CSV: " + path);
}

}  // namespace hce::experiment
