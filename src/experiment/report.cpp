#include "experiment/report.hpp"

#include <fstream>
#include <sstream>

#include "support/contracts.hpp"

namespace hce::experiment {

TextTable sweep_table(const std::vector<PointResult>& sweep) {
  TextTable t({"req/s/server", "util_edge", "util_cloud", "edge_mean_ms",
               "edge_p50_ms", "edge_p95_ms", "edge_p99_ms", "cloud_mean_ms",
               "cloud_p50_ms", "cloud_p95_ms", "cloud_p99_ms",
               "edge_ci_ms", "cloud_ci_ms"});
  for (const auto& p : sweep) {
    t.row()
        .add(p.rate_per_server, 2)
        .add(p.edge.utilization, 3)
        .add(p.cloud.utilization, 3)
        .add_ms(p.edge.mean, 3)
        .add_ms(p.edge.p50, 3)
        .add_ms(p.edge.p95, 3)
        .add_ms(p.edge.p99, 3)
        .add_ms(p.cloud.mean, 3)
        .add_ms(p.cloud.p50, 3)
        .add_ms(p.cloud.p95, 3)
        .add_ms(p.cloud.p99, 3)
        .add_ms(p.edge.mean_ci_half_width, 3)
        .add_ms(p.cloud.mean_ci_half_width, 3);
  }
  return t;
}

std::string sweep_csv(const std::vector<PointResult>& sweep) {
  return sweep_table(sweep).csv();
}

namespace {

/// Renders a table as GitHub-flavored Markdown from its CSV cells (one
/// source of truth for cell formatting).
std::string table_markdown(const TextTable& t) {
  std::istringstream csv(t.csv());
  std::ostringstream md;
  std::string line;
  bool header = true;
  while (std::getline(csv, line)) {
    md << "| ";
    for (char c : line) {
      if (c == ',') {
        md << " | ";
      } else {
        md << c;
      }
    }
    md << " |\n";
    if (header) {
      header = false;
      std::size_t cols = 1;
      for (char c : line) {
        if (c == ',') ++cols;
      }
      md << "|";
      for (std::size_t i = 0; i < cols; ++i) md << "---|";
      md << "\n";
    }
  }
  return md.str();
}

}  // namespace

std::string sweep_markdown(const std::vector<PointResult>& sweep) {
  return table_markdown(sweep_table(sweep));
}

TextTable breakdown_table(const std::vector<PointResult>& sweep) {
  TextTable t({"req/s/server", "edge_net_ms", "edge_wait_ms", "edge_svc_ms",
               "edge_retry_ms", "edge_pull_ms", "cloud_net_ms",
               "cloud_wait_ms", "cloud_svc_ms", "cloud_retry_ms",
               "cloud_pull_ms", "wait_penalty_ms", "net_advantage_ms"});
  for (const auto& p : sweep) {
    const obs::LatencyBreakdown& e = p.edge.breakdown;
    const obs::LatencyBreakdown& c = p.cloud.breakdown;
    t.row()
        .add(p.rate_per_server, 2)
        .add_ms(e.network.mean(), 3)
        .add_ms(e.wait.mean(), 3)
        .add_ms(e.service.mean(), 3)
        .add_ms(e.retry_penalty.mean(), 3)
        .add_ms(e.state_pull.mean(), 3)
        .add_ms(c.network.mean(), 3)
        .add_ms(c.wait.mean(), 3)
        .add_ms(c.service.mean(), 3)
        .add_ms(c.retry_penalty.mean(), 3)
        .add_ms(c.state_pull.mean(), 3)
        // The paper's inversion ledger (Eq. 1/2): the edge inverts once
        // its queueing (plus data-pull) penalty outgrows its network
        // advantage.
        .add_ms(e.wait.mean() - c.wait.mean(), 3)
        .add_ms(c.network.mean() - e.network.mean(), 3);
  }
  return t;
}

std::string breakdown_csv(const std::vector<PointResult>& sweep) {
  return breakdown_table(sweep).csv();
}

std::string breakdown_markdown(const std::vector<PointResult>& sweep) {
  return table_markdown(breakdown_table(sweep));
}

void save_sweep_csv(const std::vector<PointResult>& sweep,
                    const std::string& path) {
  std::ofstream os(path);
  HCE_EXPECT(os.good(), "cannot open sweep CSV for writing: " + path);
  os << sweep_csv(sweep);
  HCE_EXPECT(os.good(), "failed writing sweep CSV: " + path);
}

}  // namespace hce::experiment
