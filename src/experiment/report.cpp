#include "experiment/report.hpp"

#include <fstream>
#include <sstream>

#include "support/contracts.hpp"

namespace hce::experiment {

TextTable sweep_table(const std::vector<PointResult>& sweep) {
  TextTable t({"req/s/server", "util_edge", "util_cloud", "edge_mean_ms",
               "edge_p50_ms", "edge_p95_ms", "edge_p99_ms", "cloud_mean_ms",
               "cloud_p50_ms", "cloud_p95_ms", "cloud_p99_ms",
               "edge_ci_ms", "cloud_ci_ms"});
  for (const auto& p : sweep) {
    t.row()
        .add(p.rate_per_server, 2)
        .add(p.edge.utilization, 3)
        .add(p.cloud.utilization, 3)
        .add_ms(p.edge.mean, 3)
        .add_ms(p.edge.p50, 3)
        .add_ms(p.edge.p95, 3)
        .add_ms(p.edge.p99, 3)
        .add_ms(p.cloud.mean, 3)
        .add_ms(p.cloud.p50, 3)
        .add_ms(p.cloud.p95, 3)
        .add_ms(p.cloud.p99, 3)
        .add_ms(p.edge.mean_ci_half_width, 3)
        .add_ms(p.cloud.mean_ci_half_width, 3);
  }
  return t;
}

std::string sweep_csv(const std::vector<PointResult>& sweep) {
  return sweep_table(sweep).csv();
}

std::string sweep_markdown(const std::vector<PointResult>& sweep) {
  // Render from the CSV cells to keep one source of truth.
  const TextTable t = sweep_table(sweep);
  std::istringstream csv(t.csv());
  std::ostringstream md;
  std::string line;
  bool header = true;
  while (std::getline(csv, line)) {
    md << "| ";
    for (char c : line) {
      if (c == ',') {
        md << " | ";
      } else {
        md << c;
      }
    }
    md << " |\n";
    if (header) {
      header = false;
      std::size_t cols = 1;
      for (char c : line) {
        if (c == ',') ++cols;
      }
      md << "|";
      for (std::size_t i = 0; i < cols; ++i) md << "---|";
      md << "\n";
    }
  }
  return md.str();
}

void save_sweep_csv(const std::vector<PointResult>& sweep,
                    const std::string& path) {
  std::ofstream os(path);
  HCE_EXPECT(os.good(), "cannot open sweep CSV for writing: " + path);
  os << sweep_csv(sweep);
  HCE_EXPECT(os.good(), "failed writing sweep CSV: " + path);
}

}  // namespace hce::experiment
