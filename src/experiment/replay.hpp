// Trace-replay comparison: the paper's §4.5 experiment as one call.
//
// Replays a multi-site trace through mirrored edge and cloud deployments
// and returns everything Figs. 9-10 plot: per-site and aggregate latency
// summaries, the offered utilizations, and time-binned mean-latency
// series for both sides.
#pragma once

#include <memory>
#include <vector>

#include "obs/breakdown.hpp"
#include "stats/boxplot.hpp"
#include "support/time.hpp"
#include "workload/trace.hpp"

namespace hce::experiment {

struct ReplayConfig {
  Time edge_rtt = 0.001;
  Time cloud_rtt = 0.026;
  int servers_per_site = 1;
  /// Cloud servers; 0 = one per edge server.
  int cloud_servers = 0;
  /// Edge server speed relative to the cloud's (< 1 = constrained edge).
  double edge_speed = 1.0;
  /// Bin width of the latency-over-time series (Fig. 9's x axis).
  Time series_bin = 600.0;
  std::uint64_t seed = 1;
};

struct SiteReplayResult {
  int site = 0;
  std::uint64_t requests = 0;
  double mean_latency = 0.0;
  double utilization = 0.0;
  stats::BoxSummary box;  ///< Fig. 10's per-site box
};

struct ReplayResult {
  std::vector<SiteReplayResult> edge_sites;
  stats::BoxSummary edge_box;   ///< all edge requests
  stats::BoxSummary cloud_box;  ///< the aggregated cloud
  double edge_mean = 0.0;
  double cloud_mean = 0.0;
  double edge_utilization = 0.0;
  double cloud_utilization = 0.0;
  /// Mean end-to-end latency per time bin (Fig. 9's two curves); equal
  /// lengths, indexed from the trace start.
  std::vector<double> edge_series;
  std::vector<double> cloud_series;
  /// Bins where the edge mean exceeds the cloud mean.
  int inverted_bins = 0;
  /// Per-component latency decomposition of each side (network / wait /
  /// service / retry penalty) — shows *why* a replayed trace inverted,
  /// not just that it did. Always populated (post-processing of the
  /// sinks' records; no simulated event changes).
  obs::LatencyBreakdown edge_breakdown;
  obs::LatencyBreakdown cloud_breakdown;

  bool edge_inverted() const { return edge_mean > cloud_mean; }
};

/// Runs the mirrored replay. The trace must be sorted and non-empty.
ReplayResult replay_comparison(std::shared_ptr<const workload::Trace> trace,
                               const ReplayConfig& config);

}  // namespace hce::experiment
