// Experiment scenarios mirroring the paper's §4.1 setups.
//
// A Scenario fully describes one edge-vs-cloud comparison: topology,
// network RTTs, hardware, workload shape, mitigations, and run control.
// Presets reproduce the paper's four cloud locations (all with a 1 ms
// edge): nearby (~15 ms, us-east-1), typical (~25 ms, Frankfurt /
// Montreal), distant (~54 ms, N. California), transcontinental (~80 ms,
// Ireland).
#pragma once

#include <string>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/dispatch.hpp"
#include "core/economics.hpp"
#include "cost/meter.hpp"
#include "faults/fault.hpp"
#include "state/state.hpp"
#include "support/time.hpp"
#include "workload/service.hpp"

namespace hce::experiment {

/// The deployment family of §5's design-implication story. A Scenario
/// names *two* kinds (side_a / side_b); the sweep runner, crossover
/// finder, and fault drills compare any pair under the identical mirrored
/// workload and fault trace.
enum class DeploymentKind {
  kCloud,    ///< one consolidated site, k*m servers, long RTT
  kEdge,     ///< k sites of m servers, short RTT (optionally geo-LB)
  kHybrid,   ///< edge sites with threshold offload to a cloud pool
  kElastic,  ///< autoscaled edge fleets (autoscale::ElasticEdge)
};

const char* to_string(DeploymentKind kind);

struct Scenario {
  std::string name = "typical";

  /// Which two deployment shapes this scenario compares. Defaults
  /// preserve the paper's edge-vs-cloud pairing; results land in the
  /// PointResult fields named `edge` (side_a) and `cloud` (side_b).
  DeploymentKind side_a = DeploymentKind::kEdge;
  DeploymentKind side_b = DeploymentKind::kCloud;

  // Topology: k edge sites of m servers vs a cloud of k*m servers (or a
  // fixed-size cloud when cloud_servers_override is set — used to study
  // edge-only overprovisioning, where the edge fleet grows while the
  // cloud baseline and the offered load stay put).
  int num_sites = 5;
  int servers_per_site = 1;
  int cloud_servers_override = 0;  ///< 0 = num_sites * servers_per_site

  // Network (round-trip).
  Time edge_rtt = 0.001;
  Time cloud_rtt = 0.025;
  /// Uniform +/- jitter half-width applied to each RTT (0 disables). The
  /// paper reports RTT ranges like "20 to 24 ms"; jitter models that.
  Time rtt_jitter = 0.002;

  // Hardware.
  /// Per-server service rate, calibrated to the paper's DNN service.
  Rate mu = workload::kReferenceSaturationRate;
  /// Edge server speed relative to cloud (1 = identical hardware).
  double edge_speed = 1.0;

  // Workload shape.
  double arrival_cov = 1.0;  ///< inter-arrival CoV (1 = Poisson)
  double service_cov = 0.5;  ///< service-time CoV (DNN inference < 1)
  /// Per-request fixed overhead (web stack: Flask/TLS/serialization),
  /// added to every service demand. Inflates the mean service time
  /// identically at edge and cloud.
  Time request_overhead = 0.0;
  /// Spatial split across sites; empty = balanced.
  std::vector<double> site_weights;

  // Cloud dispatching.
  cluster::DispatchPolicy cloud_dispatch =
      cluster::DispatchPolicy::kCentralQueue;
  Time cloud_dispatch_overhead = 0.0;

  // Edge mitigations.
  bool geo_lb = false;
  std::size_t geo_lb_queue_threshold = 2;
  Time inter_site_rtt = 0.020;

  // Hybrid deployment (DeploymentKind::kHybrid): offload to the cloud
  // pool when the local queue is at least this long.
  std::size_t hybrid_offload_threshold = 2;

  // Elastic deployment (DeploymentKind::kElastic): autoscaler knobs. The
  // factory builds the policy selected by `elastic_rental` and caps the
  // control loop at warmup + duration so the calendar drains.
  Time elastic_control_interval = 30.0;
  Time elastic_provision_delay = 60.0;
  Time elastic_scale_down_cooldown = 120.0;
  double elastic_util_high = 0.8;  ///< scale out above this utilization
  double elastic_util_low = 0.4;   ///< scale in below this utilization

  /// Which control policy drives the elastic fleet.
  enum class RentalPolicy {
    kReactive,       ///< threshold stepping (the pre-rental default)
    kFixedInterval,  ///< rent ceil(rate/(mu*util)) each control interval
    kRetention,      ///< same sizing; releases deferred by a hold timer
  };
  RentalPolicy elastic_rental = RentalPolicy::kReactive;
  /// Target utilization of the rented fleet (rental policies only).
  double elastic_target_util = 0.7;
  /// Hold time before releasing unneeded capacity (kRetention only).
  Time elastic_retention = 300.0;

  // Cost metering (src/cost/). Always on — metering is pure observation
  // (plain counters at existing state-change points; no events, no RNG),
  // so it cannot perturb a run. Wire sizes feed the egress bill; prices
  // convert metered usage to dollars in SideStats::cost.
  cost::CostSpec cost;
  core::PriceModel price;

  // Fault injection (hce::faults). The schedule is materialized once per
  // replication from a dedicated RNG substream and applied to *both*
  // deployments (the same machines crash at the same instants under
  // either topology — common-random-numbers pairing of hardware faults),
  // so the measured edge/cloud gap under failure is not blurred by
  // fault-sampling noise.
  faults::FaultConfig faults;
  /// Client-side timeout/retry/backoff (applies to both sides). Enable it
  /// whenever faults are enabled, or crashed sites black-hole requests.
  cluster::RetryPolicy retry;

  // Stateful requests (src/state/). Off by default: requests carry key 0
  // and no cache tier is built — the stateless event sequence is
  // bit-identical to pre-state builds. When `state.enabled` is set, every
  // request draws a key from a Zipf(theta) popularity law over
  // `state.key_space` keys (shared across mirrored sides under CRN), and
  // edge-style deployments consult a finite per-site cache: a miss parks
  // the request while its state is pulled from the cloud store. The cloud
  // side serves state locally and never pulls — this asymmetry is the
  // data-pull inversion regime (bench_cache_inversion).
  state::StateSpec state;
  /// Round-trip to the state store for *edge* misses. Negative = use
  /// cloud_rtt (the store lives in the cloud region). Hybrid deployments
  /// always pull over their own cloud path and ignore this knob.
  Time state_pull_rtt = -1.0;
  /// Timeout/retry policy for pull RPCs. Defaults on: pulls traverse the
  /// same faulty WAN as responses, and the state tier requires retries
  /// whenever link faults are present (a lost pull would strand its
  /// parked request forever).
  cluster::RetryPolicy state_pull_retry{true, 0.5, 3, 0.05, 2.0, true};

  // Observability (src/obs/). Off by default: no sampler events are
  // scheduled, no completion records are copied, and SideStats.breakdown
  // stays empty — the instrumented and uninstrumented runs execute the
  // identical event sequence either way (sampler ticks are read-only and
  // RNG-free), which the goldens-with-observe-on determinism test pins.
  /// Collect per-replication latency breakdowns (network / wait / service
  /// / retry penalty) and per-station time series.
  bool observe = false;
  /// Sampler cadence in simulated seconds (when observe is on).
  Time obs_sample_interval = 5.0;

  // Run control.
  Time warmup = 240.0;
  Time duration = 1600.0;
  int replications = 3;
  std::uint64_t seed = 42;

  // Partitioned parallel engine (des/partition.hpp). `partitions` > 1
  // shards ONE replication across that many conservatively synchronized
  // calendars: edge sites split into contiguous blocks (plus the cloud
  // and the state store in partition 0) and every cross-partition flow
  // rides a mailbox whose lookahead is the minimum one-way WAN delay.
  // Restricted to the edge-vs-cloud pairing. The result is bit-identical
  // for a fixed partition count at ANY worker-thread count — partitioning
  // is a performance knob times a *statistical* model change (per-shard
  // RNG streams), never a thread-schedule lottery. The default, 1, runs
  // the sequential engine and reproduces the hexfloat goldens exactly.
  int partitions = 1;
  /// Worker threads driving the partitions (0 = one per partition, capped
  /// at the hardware). Changing this NEVER changes any reported number.
  int partition_workers = 0;

  /// Total cloud servers. The sweep axis ("req/s per server") is defined
  /// against this count: total offered load = rate * cloud_servers().
  int cloud_servers() const {
    return cloud_servers_override > 0 ? cloud_servers_override
                                      : num_sites * servers_per_site;
  }
  /// Network advantage of the edge.
  Time delta_n() const { return cloud_rtt - edge_rtt; }

  // --- Presets matching the paper ---------------------------------------
  static Scenario nearby_cloud();           ///< ~15 ms cloud (§4.1, first)
  static Scenario typical_cloud();          ///< ~25 ms cloud (Fig. 3)
  static Scenario distant_cloud();          ///< ~54 ms cloud (Figs. 4-6)
  static Scenario transcontinental_cloud(); ///< ~80 ms cloud (Fig. 7)
};

}  // namespace hce::experiment
