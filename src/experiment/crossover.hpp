// Crossover (performance-inversion point) extraction from sweep results.
//
// The paper reports inversion points as the request rate where the edge
// curve rises above the cloud curve (Figs. 3-5) and converts them to
// cutoff utilizations (Fig. 7, §4.2 validation). This module locates those
// crossings by linear interpolation on the measured series.
#pragma once

#include <optional>
#include <vector>

#include "experiment/runner.hpp"

namespace hce::experiment {

enum class Metric { kMean, kP50, kP95, kP99 };

double metric_of(const SideStats& s, Metric m);
const char* metric_name(Metric m);

struct Crossover {
  Rate rate = 0.0;          ///< req/s per server where edge == cloud
  double utilization = 0.0; ///< rate / mu (cutoff utilization)
};

/// First rate where the edge metric rises above the cloud metric, linear
/// interpolated between sweep points. nullopt = no inversion in range.
std::optional<Crossover> find_crossover(const std::vector<PointResult>& sweep,
                                        Metric metric, Rate mu);

/// Convenience: run a (fine) sweep and return mean and tail crossovers.
struct CrossoverSummary {
  std::optional<Crossover> mean;
  std::optional<Crossover> p95;
};

CrossoverSummary measure_crossovers(const Scenario& scenario,
                                    const std::vector<Rate>& rates,
                                    int max_threads = 0);

}  // namespace hce::experiment
