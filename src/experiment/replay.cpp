#include "experiment/replay.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/deployment_base.hpp"
#include "cluster/source.hpp"
#include "des/simulation.hpp"
#include "experiment/deployment_factory.hpp"
#include "obs/breakdown.hpp"
#include "stats/series.hpp"
#include "support/contracts.hpp"

namespace hce::experiment {

ReplayResult replay_comparison(std::shared_ptr<const workload::Trace> trace,
                               const ReplayConfig& config) {
  HCE_EXPECT(trace != nullptr && !trace->empty(),
             "replay_comparison: empty trace");
  HCE_EXPECT(config.servers_per_site >= 1,
             "replay_comparison: servers_per_site >= 1");
  HCE_EXPECT(config.series_bin > 0.0,
             "replay_comparison: series_bin must be positive");
  const int num_sites = trace->num_sites();
  HCE_EXPECT(num_sites >= 1, "replay_comparison: trace has no sites");

  des::Simulation sim;
  Rng rng(config.seed);

  // The replay shares the sweep runner's factory: describe the topology
  // as a Scenario (zero jitter keeps the fixed networks of the original
  // replay, which never draw from the per-deployment RNG streams) and
  // build both sides through make_deployment.
  Scenario sc;
  sc.num_sites = num_sites;
  sc.servers_per_site = config.servers_per_site;
  sc.cloud_servers_override = config.cloud_servers;
  sc.edge_rtt = config.edge_rtt;
  sc.cloud_rtt = config.cloud_rtt;
  sc.rtt_jitter = 0.0;
  sc.edge_speed = config.edge_speed;
  std::unique_ptr<cluster::Deployment> edge_dep = make_deployment(
      sim, sc, DeploymentKind::kEdge, nullptr,
      rng.stream(network_stream_name(DeploymentKind::kEdge)));
  std::unique_ptr<cluster::Deployment> cloud_dep = make_deployment(
      sim, sc, DeploymentKind::kCloud, nullptr,
      rng.stream(network_stream_name(DeploymentKind::kCloud)));
  cluster::Deployment& edge = *edge_dep;
  cluster::Deployment& cloud = *cloud_dep;

  cluster::TraceReplaySource replay(
      sim, trace, [&](des::Request r) { edge.submit(std::move(r)); });
  replay.also_submit_to(
      [&](des::Request r) { cloud.submit(std::move(r)); });
  replay.start();
  sim.run();

  ReplayResult out;
  out.edge_mean = edge.sink().latency_summary().mean();
  out.cloud_mean = cloud.sink().latency_summary().mean();
  out.edge_utilization = edge.utilization();
  out.cloud_utilization = cloud.utilization();
  out.edge_box = stats::box_summary(edge.sink().latencies());
  out.cloud_box = stats::box_summary(cloud.sink().latencies());
  out.edge_breakdown = obs::collect_breakdown(edge.sink());
  out.cloud_breakdown = obs::collect_breakdown(cloud.sink());

  const auto counts = trace->site_counts();
  for (int s = 0; s < num_sites; ++s) {
    SiteReplayResult site;
    site.site = s;
    site.requests = counts[static_cast<std::size_t>(s)];
    const auto lat = edge.sink().latencies(s);
    if (!lat.empty()) {
      site.box = stats::box_summary(lat);
      site.mean_latency = site.box.mean;
    }
    site.utilization = edge.site_utilization(s);
    out.edge_sites.push_back(site);
  }

  const Time duration = std::max(trace->duration(), config.series_bin);
  const auto bins =
      static_cast<std::size_t>(std::ceil(duration / config.series_bin));
  stats::BinnedSeries edge_series(0.0, config.series_bin, bins);
  stats::BinnedSeries cloud_series(0.0, config.series_bin, bins);
  for (const auto& r : edge.sink().records()) {
    edge_series.add(r.t_created, r.end_to_end);
  }
  for (const auto& r : cloud.sink().records()) {
    cloud_series.add(r.t_created, r.end_to_end);
  }
  out.edge_series = edge_series.means_per_bin();
  out.cloud_series = cloud_series.means_per_bin();
  for (std::size_t b = 0; b < bins; ++b) {
    if (out.edge_series[b] > out.cloud_series[b]) ++out.inverted_bins;
  }
  return out;
}

}  // namespace hce::experiment
