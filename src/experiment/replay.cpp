#include "experiment/replay.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/deployment.hpp"
#include "cluster/source.hpp"
#include "des/simulation.hpp"
#include "stats/series.hpp"
#include "support/contracts.hpp"

namespace hce::experiment {

ReplayResult replay_comparison(std::shared_ptr<const workload::Trace> trace,
                               const ReplayConfig& config) {
  HCE_EXPECT(trace != nullptr && !trace->empty(),
             "replay_comparison: empty trace");
  HCE_EXPECT(config.servers_per_site >= 1,
             "replay_comparison: servers_per_site >= 1");
  HCE_EXPECT(config.series_bin > 0.0,
             "replay_comparison: series_bin must be positive");
  const int num_sites = trace->num_sites();
  HCE_EXPECT(num_sites >= 1, "replay_comparison: trace has no sites");

  des::Simulation sim;
  Rng rng(config.seed);

  cluster::EdgeConfig edge_cfg;
  edge_cfg.num_sites = num_sites;
  edge_cfg.servers_per_site = config.servers_per_site;
  edge_cfg.speed = config.edge_speed;
  edge_cfg.network = cluster::NetworkModel::fixed(config.edge_rtt);
  cluster::EdgeDeployment edge(sim, edge_cfg, rng.stream("edge"));

  cluster::CloudConfig cloud_cfg;
  cloud_cfg.num_servers = config.cloud_servers > 0
                              ? config.cloud_servers
                              : num_sites * config.servers_per_site;
  cloud_cfg.network = cluster::NetworkModel::fixed(config.cloud_rtt);
  cluster::CloudDeployment cloud(sim, cloud_cfg, rng.stream("cloud"));

  cluster::TraceReplaySource replay(
      sim, trace, [&](des::Request r) { edge.submit(std::move(r)); });
  replay.also_submit_to(
      [&](des::Request r) { cloud.submit(std::move(r)); });
  replay.start();
  sim.run();

  ReplayResult out;
  out.edge_mean = edge.sink().latency_summary().mean();
  out.cloud_mean = cloud.sink().latency_summary().mean();
  out.edge_utilization = edge.utilization();
  out.cloud_utilization = cloud.utilization();
  out.edge_box = stats::box_summary(edge.sink().latencies());
  out.cloud_box = stats::box_summary(cloud.sink().latencies());

  const auto counts = trace->site_counts();
  for (int s = 0; s < num_sites; ++s) {
    SiteReplayResult site;
    site.site = s;
    site.requests = counts[static_cast<std::size_t>(s)];
    const auto lat = edge.sink().latencies(s);
    if (!lat.empty()) {
      site.box = stats::box_summary(lat);
      site.mean_latency = site.box.mean;
    }
    site.utilization = edge.site_utilization(s);
    out.edge_sites.push_back(site);
  }

  const Time duration = std::max(trace->duration(), config.series_bin);
  const auto bins =
      static_cast<std::size_t>(std::ceil(duration / config.series_bin));
  stats::BinnedSeries edge_series(0.0, config.series_bin, bins);
  stats::BinnedSeries cloud_series(0.0, config.series_bin, bins);
  for (const auto& r : edge.sink().records()) {
    edge_series.add(r.t_created, r.end_to_end);
  }
  for (const auto& r : cloud.sink().records()) {
    cloud_series.add(r.t_created, r.end_to_end);
  }
  out.edge_series = edge_series.means_per_bin();
  out.cloud_series = cloud_series.means_per_bin();
  for (std::size_t b = 0; b < bins; ++b) {
    if (out.edge_series[b] > out.cloud_series[b]) ++out.inverted_bins;
  }
  return out;
}

}  // namespace hce::experiment
