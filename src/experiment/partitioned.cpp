#include "experiment/partitioned.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "cluster/deployment.hpp"
#include "cluster/remote.hpp"
#include "cluster/source.hpp"
#include "cluster/state_tier.hpp"
#include "cost/counters.hpp"
#include "des/partition.hpp"
#include "dist/distribution.hpp"
#include "dist/weights.hpp"
#include "dist/zipf.hpp"
#include "experiment/deployment_factory.hpp"
#include "faults/fault.hpp"
#include "obs/breakdown.hpp"
#include "obs/sampler.hpp"
#include "support/contracts.hpp"
#include "workload/arrival.hpp"

namespace hce::experiment {

PartitionPlan make_partition_plan(int num_sites, int partitions) {
  HCE_EXPECT(num_sites >= 1, "partition plan needs >= 1 site");
  HCE_EXPECT(partitions >= 1 && partitions <= num_sites,
             "partitions must be in [1, num_sites] (every shard owns at "
             "least one site)");
  PartitionPlan plan;
  plan.partitions = partitions;
  plan.site_partition.resize(static_cast<std::size_t>(num_sites));
  plan.site_local.resize(static_cast<std::size_t>(num_sites));
  plan.first_site.resize(static_cast<std::size_t>(partitions));
  plan.shard_sites.resize(static_cast<std::size_t>(partitions));
  // Balanced contiguous blocks: shard p owns [p*k/P, (p+1)*k/P) — sizes
  // differ by at most one and the assignment is a pure function of (k, P).
  for (int p = 0; p < partitions; ++p) {
    const int begin = static_cast<int>(
        (static_cast<long long>(p) * num_sites) / partitions);
    const int end = static_cast<int>(
        (static_cast<long long>(p + 1) * num_sites) / partitions);
    plan.first_site[static_cast<std::size_t>(p)] = begin;
    plan.shard_sites[static_cast<std::size_t>(p)] = end - begin;
    for (int s = begin; s < end; ++s) {
      plan.site_partition[static_cast<std::size_t>(s)] = p;
      plan.site_local[static_cast<std::size_t>(s)] = s - begin;
    }
  }
  return plan;
}

namespace {

/// Sums the manual-field PullStats (no operator+= upstream: the identity
/// `issued == completed + abandoned` is per-tier, summing is the caller's
/// explicit choice).
void accumulate(state::PullStats& into, const state::PullStats& p) {
  into.issued += p.issued;
  into.completed += p.completed;
  into.abandoned += p.abandoned;
  into.retries += p.retries;
  into.link_drops += p.link_drops;
}

}  // namespace

ReplicationOutput run_replication_partitioned(const Scenario& sc,
                                              Rate rate_per_server,
                                              int replication) {
  const int P = sc.partitions;
  HCE_EXPECT(P >= 1, "partitions must be >= 1");
  const int requested_workers = sc.partition_workers;
  if (P == 1) {
    // The golden-identity path: the sequential replication body runs
    // unchanged over partition 0 of a one-partition engine, whose window
    // loop degenerates to Simulation::run() (no links -> one infinite
    // window). Bit-identical to run_replication by construction.
    des::PartitionedSimulation pds(1);
    des::Simulation& sim = pds.partition(0);
    return detail::run_replication_on(
        sc, rate_per_server, replication, sim,
        [&pds, requested_workers] {
          pds.run(std::max(1, requested_workers));
        });
  }

  HCE_EXPECT(rate_per_server > 0.0, "rate must be positive");
  HCE_EXPECT(rate_per_server < sc.mu,
             "offered per-server rate must be below saturation");
  HCE_EXPECT(sc.side_a == DeploymentKind::kEdge &&
                 sc.side_b == DeploymentKind::kCloud,
             "partitioned replications support the edge-vs-cloud pairing "
             "only (side_a = kEdge, side_b = kCloud)");

  Rng rng = Rng(sc.seed).stream("replication",
                                static_cast<std::uint64_t>(replication));
  const Time horizon = sc.warmup + sc.duration;

  // Fault trace from the same substream as the sequential runner (CRN:
  // the same machines crash at the same instants at any partition count),
  // including the dead-replication short-circuit.
  faults::FaultTrace trace;
  const bool faulted = sc.faults.any();
  if (faulted) {
    trace = faults::FaultTrace::generate(sc.faults, sc.num_sites, horizon,
                                         rng.stream("faults"));
    if (trace.blackout() && outages_apply(sc, sc.side_a) &&
        outages_apply(sc, sc.side_b)) {
      ReplicationOutput out;
      out.dead = true;
      // Same synthesis as the sequential runner: a blacked-out fleet is
      // still provisioned and still billed.
      out.edge_usage = dead_replication_usage(sc, sc.side_a);
      out.cloud_usage = dead_replication_usage(sc, sc.side_b);
      const auto n = static_cast<std::size_t>(sc.num_sites);
      out.site_downtime.resize(n);
      for (int s = 0; s < sc.num_sites; ++s) {
        out.site_downtime[static_cast<std::size_t>(s)] =
            trace.site_downtime_fraction(s);
      }
      out.site_mean_latency.assign(n, 0.0);
      out.site_utilization.assign(n, 0.0);
      return out;
    }
  }

  const PartitionPlan plan = make_partition_plan(sc.num_sites, P);
  des::PartitionedSimulation pds(P);

  // --- Partition 0's shared cloud ---------------------------------------
  cluster::CloudHubConfig hub_cfg;
  hub_cfg.num_servers = sc.cloud_servers();
  hub_cfg.network = make_network(sc.cloud_rtt, sc.rtt_jitter);
  hub_cfg.dispatch = sc.cloud_dispatch;
  if (faulted) hub_cfg.link_faults = trace.cloud_link_schedule();
  hub_cfg.fault_group_size = sc.servers_per_site;
  hub_cfg.site_partition = plan.site_partition;
  cluster::CloudHub hub(pds, 0, std::move(hub_cfg), rng.stream("cloud-net"));

  std::unique_ptr<cluster::StateStoreHub> store;
  const Time pull_rtt =
      sc.state_pull_rtt < 0.0 ? sc.cloud_rtt : sc.state_pull_rtt;
  if (sc.state.enabled) {
    cluster::StateStoreHubConfig store_cfg;
    store_cfg.network = make_network(pull_rtt, sc.rtt_jitter);
    if (faulted) store_cfg.link_faults = trace.cloud_link_schedule();
    store = std::make_unique<cluster::StateStoreHub>(
        pds, 0, std::move(store_cfg), rng.stream("state-store"));
  }

  // --- Per-partition front ends and edge shards -------------------------
  std::vector<std::unique_ptr<cluster::RemoteCloudClient>> fronts;
  fronts.reserve(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    cluster::RemoteCloudClientConfig fe_cfg;
    fe_cfg.network = make_network(sc.cloud_rtt, sc.rtt_jitter);
    fe_cfg.dispatch_overhead = sc.cloud_dispatch_overhead;
    fe_cfg.retry = sc.retry;
    if (faulted) fe_cfg.link_faults = trace.cloud_link_schedule();
    fronts.push_back(std::make_unique<cluster::RemoteCloudClient>(
        pds, p, hub, std::move(fe_cfg),
        rng.stream("cloud-uplink", static_cast<std::uint64_t>(p))));
  }

  std::vector<std::unique_ptr<cluster::EdgeDeployment>> shards;
  shards.reserve(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    cluster::EdgeConfig ecfg;
    ecfg.num_sites = plan.shard_sites[pu];
    ecfg.servers_per_site = sc.servers_per_site;
    ecfg.speed = sc.edge_speed;
    ecfg.network = make_network(sc.edge_rtt, sc.rtt_jitter);
    // Redirect/failover rings are shard-local: a partitioned run's
    // "next-nearest site" never leaves the shard (sites of other shards
    // are not candidates). Deterministic, but a different topology than
    // the sequential all-sites ring — P > 1 is a model change, not a
    // reordering.
    ecfg.geo_lb = sc.geo_lb;
    ecfg.geo_lb_queue_threshold = sc.geo_lb_queue_threshold;
    ecfg.inter_site_rtt = sc.inter_site_rtt;
    ecfg.retry = sc.retry;
    if (faulted) {
      ecfg.site_link_faults.resize(static_cast<std::size_t>(ecfg.num_sites));
      for (int local = 0; local < ecfg.num_sites; ++local) {
        ecfg.site_link_faults[static_cast<std::size_t>(local)] =
            trace.site_link_schedule(plan.first_site[pu] + local);
      }
    }
    if (sc.state.enabled) {
      ecfg.state = sc.state;
      ecfg.state_network = make_network(pull_rtt, sc.rtt_jitter);
      ecfg.state_retry = sc.state_pull_retry;
      if (faulted) ecfg.state_link_faults = trace.cloud_link_schedule();
    }
    shards.push_back(std::make_unique<cluster::EdgeDeployment>(
        pds.partition(p), std::move(ecfg),
        rng.stream("edge-net", static_cast<std::uint64_t>(p))));
    // Partition 0's tier keeps the local pull path — the store lives in
    // its partition. Every other shard's tier routes pull uplinks through
    // the store hub's mailbox.
    if (sc.state.enabled && p != 0) {
      cluster::StateTier* tier = shards.back()->mutable_state_tier();
      HCE_ASSERT(tier != nullptr, "stateful shard without a tier");
      tier->set_remote_store(pds, p, 0, *store);
      store->register_tier(p, tier);
    }
  }

  // --- Links: lookahead from the minimum one-way WAN delay --------------
  // Cloud requests/responses cross on every link; state pulls add a
  // second flow only when the pull path is non-trivial (a trivial tier
  // completes misses inline and never posts). A zero floor — e.g. a
  // zero-RTT cloud path — is rejected by add_link with a contract error.
  Time lookahead = min_one_way(sc.cloud_rtt, sc.rtt_jitter);
  const cluster::StateTier* tier0 =
      sc.state.enabled ? shards[0]->state_tier() : nullptr;
  if (tier0 != nullptr && !tier0->trivial_pulls()) {
    lookahead = std::min(lookahead, min_one_way(pull_rtt, sc.rtt_jitter));
  }
  for (int p = 1; p < P; ++p) {
    pds.add_link(0, p, lookahead);
    pds.add_link(p, 0, lookahead);
  }

  // --- Service model and spatial split (identical to the sequential
  // runner: same formulas, same global stream names) ---------------------
  const Time mean_service = 1.0 / sc.mu;
  HCE_EXPECT(sc.request_overhead < mean_service,
             "request_overhead must be below the mean service time");
  const Time stochastic_mean = mean_service - sc.request_overhead;
  const double part_cov = sc.service_cov * mean_service / stochastic_mean;
  workload::ServicePtr service = workload::from_distribution(dist::shifted(
      dist::by_cov(stochastic_mean, part_cov), sc.request_overhead));

  const std::vector<double> weights =
      sc.site_weights.empty() ? dist::uniform_weights(sc.num_sites)
                              : dist::normalized(sc.site_weights);
  HCE_EXPECT(static_cast<int>(weights.size()) == sc.num_sites,
             "site_weights size mismatch");
  const Rate total_rate =
      rate_per_server * static_cast<double>(sc.cloud_servers());

  // --- Reserves: scale the sequential hints by each shard's load share --
  const ReserveHints hints = replication_reserve_hints(sc, rate_per_server);
  std::vector<double> shard_weight(static_cast<std::size_t>(P), 0.0);
  for (int s = 0; s < sc.num_sites; ++s) {
    shard_weight[static_cast<std::size_t>(plan.site_partition[s])] +=
        weights[static_cast<std::size_t>(s)];
  }
  for (int p = 0; p < P; ++p) {
    const double w = shard_weight[static_cast<std::size_t>(p)];
    const auto completions =
        static_cast<std::size_t>(static_cast<double>(hints.completions) * w) +
        64;
    const auto inflight =
        static_cast<std::size_t>(static_cast<double>(hints.inflight) * w) + 64;
    shards[static_cast<std::size_t>(p)]->sink().reserve(completions);
    shards[static_cast<std::size_t>(p)]->reserve_inflight(inflight);
    fronts[static_cast<std::size_t>(p)]->reserve(inflight, completions);
    // Partition 0 also hosts every cloud service event, so it gets the
    // full sequential calendar hint; edge-only partitions their share.
    pds.partition(p).reserve(
        p == 0 ? hints.pending_events
               : static_cast<std::size_t>(
                     static_cast<double>(hints.pending_events) * w) +
                     256);
    pds.reserve_inbox(p, p == 0 ? hints.inflight : inflight);
  }

  // --- Sources: per-site streams keep their global names ----------------
  std::shared_ptr<const dist::ZipfSampler> keys;
  if (sc.state.enabled) {
    keys = std::make_shared<const dist::ZipfSampler>(sc.state.key_space,
                                                     sc.state.zipf_theta);
  }
  std::vector<std::unique_ptr<cluster::MirroredSource>> sources;
  sources.reserve(static_cast<std::size_t>(sc.num_sites));
  for (int s = 0; s < sc.num_sites; ++s) {
    const Rate site_rate = total_rate * weights[static_cast<std::size_t>(s)];
    if (site_rate <= 0.0) continue;
    const auto pu = static_cast<std::size_t>(
        plan.site_partition[static_cast<std::size_t>(s)]);
    const int local = plan.site_local[static_cast<std::size_t>(s)];
    cluster::EdgeDeployment* shard = shards[pu].get();
    cluster::RemoteCloudClient* fe = fronts[pu].get();
    auto arrivals = workload::renewal_rate_cov(site_rate, sc.arrival_cov);
    sources.push_back(std::make_unique<cluster::MirroredSource>(
        pds.partition(static_cast<int>(pu)), std::move(arrivals), service, s,
        // The edge copy is remapped to the shard-local site index at the
        // submit boundary (and back to global when records are merged);
        // the cloud copy keeps the global index — the hub's fault groups
        // and origin routing are keyed by it.
        [shard, local](des::Request r) {
          r.site = local;
          shard->submit(std::move(r));
        },
        [fe](des::Request r) { fe->submit(std::move(r)); },
        rng.stream("source", static_cast<std::uint64_t>(s))));
    if (keys) {
      sources.back()->set_key_sampler(
          keys, rng.stream("keys", static_cast<std::uint64_t>(s)));
    }
    sources.back()->start(horizon);
  }

  // --- Outage wiring: each transition on its owner's calendar -----------
  if (faulted) {
    const bool fault_a = outages_apply(sc, sc.side_a);
    const bool fault_b = outages_apply(sc, sc.side_b);
    cluster::CloudHub* hubp = &hub;
    for (int s = 0; s < sc.num_sites; ++s) {
      const auto pu = static_cast<std::size_t>(
          plan.site_partition[static_cast<std::size_t>(s)]);
      const int local = plan.site_local[static_cast<std::size_t>(s)];
      cluster::EdgeDeployment* shard = shards[pu].get();
      des::Simulation& shard_sim = pds.partition(static_cast<int>(pu));
      des::Simulation& cloud_sim = pds.partition(0);
      for (const faults::Outage& o :
           trace.site_outages[static_cast<std::size_t>(s)]) {
        if (fault_a) {
          shard_sim.schedule_at(o.start,
                                [shard, local] { shard->set_site_up(local, false); });
          shard_sim.schedule_at(o.end,
                                [shard, local] { shard->set_site_up(local, true); });
        }
        if (fault_b) {
          cloud_sim.schedule_at(o.start,
                                [hubp, s] { hubp->set_site_up(s, false); });
          cloud_sim.schedule_at(o.end,
                                [hubp, s] { hubp->set_site_up(s, true); });
        }
      }
    }
  }

  // --- Warmup reset: one event per partition ----------------------------
  for (int p = 0; p < P; ++p) {
    cluster::EdgeDeployment* shard = shards[static_cast<std::size_t>(p)].get();
    cluster::RemoteCloudClient* fe = fronts[static_cast<std::size_t>(p)].get();
    cluster::CloudHub* hubp = p == 0 ? &hub : nullptr;
    cluster::StateStoreHub* storep = p == 0 ? store.get() : nullptr;
    pds.partition(p).schedule_at(sc.warmup, [shard, fe, hubp, storep] {
      shard->reset_stats();
      fe->reset_stats();
      if (hubp != nullptr) hubp->reset_stats();
      if (storep != nullptr) storep->reset_stats();
    });
  }

  // --- Observability: one sampler pair per partition, merged below ------
  std::vector<std::unique_ptr<obs::Sampler>> samplers_a;
  std::vector<std::unique_ptr<obs::Sampler>> samplers_b;
  if (sc.observe) {
    for (int p = 0; p < P; ++p) {
      const auto pu = static_cast<std::size_t>(p);
      samplers_a.push_back(std::make_unique<obs::Sampler>(pds.partition(p)));
      shards[pu]->instrument(*samplers_a.back());
      samplers_b.push_back(std::make_unique<obs::Sampler>(pds.partition(p)));
      fronts[pu]->instrument(*samplers_b.back());
      if (p == 0) hub.instrument(*samplers_b.back());
    }
    for (auto& s : samplers_a) s->start(sc.obs_sample_interval, horizon);
    for (auto& s : samplers_b) s->start(sc.obs_sample_interval, horizon);
  }

  // --- Run ---------------------------------------------------------------
  int workers = requested_workers;
  if (workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    workers = static_cast<int>(
        std::min<unsigned>(static_cast<unsigned>(P), hw));
  }
  pds.run(workers);
  if (sc.observe) pds.rewind_to_last_activity();

  for (int p = 0; p < P; ++p) {
    shards[static_cast<std::size_t>(p)]->sink().drop_before(sc.warmup);
    fronts[static_cast<std::size_t>(p)]->sink().drop_before(sc.warmup);
  }

  // --- Merge into one ReplicationOutput (partition order throughout, so
  // the result is a pure function of the partition count) ----------------
  ReplicationOutput out;
  out.events = pds.events_executed();
  double util_sum = 0.0;
  for (int p = 0; p < P; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    cluster::EdgeDeployment& shard = *shards[pu];
    cluster::RemoteCloudClient& fe = *fronts[pu];
    const std::vector<double> el = shard.sink().latencies();
    out.edge_latencies.insert(out.edge_latencies.end(), el.begin(), el.end());
    const std::vector<double> cl = fe.sink().latencies();
    out.cloud_latencies.insert(out.cloud_latencies.end(), cl.begin(),
                               cl.end());
    out.edge_redirects += shard.redirects();
    out.edge_failovers += shard.failovers();
    out.edge_client += shard.client_stats();
    out.cloud_client += fe.stats();
    // Response legs the hubs dropped on a partitioned WAN belong to this
    // origin's accounting (the sequential engine counts them client-side).
    out.cloud_client.link_drops += hub.response_link_drops(p);
    out.edge_dropped += shard.dropped();
    out.edge_cache += shard.cache_stats();
    accumulate(out.edge_pulls, shard.pull_stats());
    if (store) out.edge_pulls.link_drops += store->response_link_drops(p);
    // Cost usage, assembled manually rather than with a blind += so the
    // per-replication elapsed time is taken ONCE (below), not summed
    // across P partitions. Edge hardware/site/pull usage sums across
    // shards; the cloud's per-origin WAN counters are read in partition
    // order (the hubs count responses per origin precisely so this merge
    // is free of stats-epoch races).
    {
      const cost::Usage su = shard.cost_usage();
      out.edge_usage.edge += su.edge;
      out.edge_usage.edge_site_seconds += su.edge_site_seconds;
      out.edge_usage.wan += su.wan;  // pull uplinks counted shard-side
      if (store) {
        out.edge_usage.wan.pull_response_sends += store->response_sends(p);
      }
      out.cloud_usage.wan.request_sends += fe.wan_request_sends();
      out.cloud_usage.wan.response_sends += hub.response_sends(p);
    }
    out.edge_pool_high_water =
        std::max(out.edge_pool_high_water, shard.pool_high_water());
    out.cloud_pool_high_water =
        std::max(out.cloud_pool_high_water, fe.pool_high_water());
    for (int local = 0; local < shard.num_sites(); ++local) {
      util_sum += shard.site_utilization(local);
    }
  }
  out.cloud_utilization = hub.utilization();
  out.cloud_dropped = hub.dropped();
  out.edge_utilization = util_sum / static_cast<double>(sc.num_sites);
  // Shard 0 shares partition 0's calendar with the hub, so both sides'
  // elapsed time is the same partition-0 clock read — taken once here.
  out.cloud_usage.cloud = hub.server_time();
  out.cloud_usage.elapsed_seconds = hub.stats_elapsed();
  out.edge_usage.elapsed_seconds = hub.stats_elapsed();

  out.site_downtime.resize(static_cast<std::size_t>(sc.num_sites), 0.0);
  if (faulted) {
    for (int s = 0; s < sc.num_sites; ++s) {
      out.site_downtime[static_cast<std::size_t>(s)] =
          trace.site_downtime_fraction(s);
    }
  }
  out.site_mean_latency.resize(static_cast<std::size_t>(sc.num_sites));
  out.site_utilization.resize(static_cast<std::size_t>(sc.num_sites));
  for (int s = 0; s < sc.num_sites; ++s) {
    const auto su = static_cast<std::size_t>(s);
    const auto pu = static_cast<std::size_t>(plan.site_partition[su]);
    const int local = plan.site_local[su];
    out.site_mean_latency[su] =
        shards[pu]->sink().latency_summary(local).mean();
    out.site_utilization[su] = shards[pu]->site_utilization(local);
  }

  if (sc.observe) {
    // Edge records carry shard-local site indices; remap to global before
    // the deterministic (t_completed, partition) merge. Station ids stay
    // shard-local (stations are per-shard objects). Cloud records already
    // carry global sites.
    std::vector<des::RecordColumns> edge_remapped;
    edge_remapped.reserve(static_cast<std::size_t>(P));
    std::vector<const des::RecordColumns*> edge_ptrs;
    std::vector<const des::RecordColumns*> cloud_ptrs;
    for (int p = 0; p < P; ++p) {
      const auto pu = static_cast<std::size_t>(p);
      edge_remapped.push_back(shards[pu]->sink().records());
      const auto offset =
          static_cast<std::int16_t>(plan.first_site[pu]);
      for (std::int16_t& site : edge_remapped.back().site) {
        site = static_cast<std::int16_t>(site + offset);
      }
      cloud_ptrs.push_back(&fronts[pu]->sink().records());
    }
    for (const des::RecordColumns& rc : edge_remapped) {
      edge_ptrs.push_back(&rc);
    }
    out.edge_records = obs::merge_partition_records(edge_ptrs);
    out.cloud_records = obs::merge_partition_records(cloud_ptrs);
    std::vector<obs::SamplerResult> series_a;
    std::vector<obs::SamplerResult> series_b;
    for (int p = 0; p < P; ++p) {
      series_a.push_back(samplers_a[static_cast<std::size_t>(p)]->take_result());
      series_b.push_back(samplers_b[static_cast<std::size_t>(p)]->take_result());
    }
    out.edge_series = obs::merge_partition_series(series_a);
    out.cloud_series = obs::merge_partition_series(series_b);
  }
  return out;
}

}  // namespace hce::experiment
