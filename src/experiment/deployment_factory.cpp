#include "experiment/deployment_factory.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "autoscale/elastic_edge.hpp"
#include "autoscale/policy.hpp"
#include "cluster/deployment.hpp"
#include "cluster/hybrid.hpp"
#include "dist/distribution.hpp"
#include "support/contracts.hpp"

namespace hce::experiment {

cluster::NetworkModel make_network(Time rtt, Time jitter) {
  const Time j = std::min(jitter, 0.8 * rtt);
  if (j <= 0.0) return cluster::NetworkModel::fixed(rtt);
  return cluster::NetworkModel::jittered(rtt, dist::uniform(-j, j));
}

Time min_one_way(Time rtt, Time jitter) {
  const Time j = std::max(std::min(jitter, 0.8 * rtt), 0.0);
  return (rtt - j) / 2.0;
}

const char* network_stream_name(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kCloud: return "cloud-net";
    case DeploymentKind::kEdge: return "edge-net";
    case DeploymentKind::kHybrid: return "hybrid-net";
    case DeploymentKind::kElastic: return "elastic-net";
  }
  return "net";
}

bool outages_apply(const Scenario& scenario, DeploymentKind kind) {
  if (!scenario.faults.edge_site.enabled) return false;
  return kind == DeploymentKind::kCloud ? scenario.faults.mirror_to_cloud
                                        : true;
}

namespace {

std::vector<std::shared_ptr<const faults::LinkSchedule>> site_links(
    const Scenario& sc, const faults::FaultTrace* trace) {
  std::vector<std::shared_ptr<const faults::LinkSchedule>> links;
  if (trace == nullptr) return links;
  links.resize(static_cast<std::size_t>(sc.num_sites));
  for (int s = 0; s < sc.num_sites; ++s) {
    links[static_cast<std::size_t>(s)] = trace->site_link_schedule(s);
  }
  return links;
}

}  // namespace

std::unique_ptr<cluster::Deployment> make_deployment(
    des::Simulation& sim, const Scenario& sc, DeploymentKind kind,
    const faults::FaultTrace* trace, Rng rng) {
  switch (kind) {
    case DeploymentKind::kEdge: {
      cluster::EdgeConfig cfg;
      cfg.num_sites = sc.num_sites;
      cfg.servers_per_site = sc.servers_per_site;
      cfg.speed = sc.edge_speed;
      cfg.network = make_network(sc.edge_rtt, sc.rtt_jitter);
      cfg.geo_lb = sc.geo_lb;
      cfg.geo_lb_queue_threshold = sc.geo_lb_queue_threshold;
      cfg.inter_site_rtt = sc.inter_site_rtt;
      cfg.retry = sc.retry;
      cfg.site_link_faults = site_links(sc, trace);
      if (sc.state.enabled) {
        cfg.state = sc.state;
        // The store lives in the cloud region unless overridden; pulls
        // share the WAN's jitter model and its fault schedule.
        const Time pull_rtt =
            sc.state_pull_rtt < 0.0 ? sc.cloud_rtt : sc.state_pull_rtt;
        cfg.state_network = make_network(pull_rtt, sc.rtt_jitter);
        cfg.state_retry = sc.state_pull_retry;
        if (trace != nullptr) {
          cfg.state_link_faults = trace->cloud_link_schedule();
        }
      }
      return std::make_unique<cluster::EdgeDeployment>(sim, std::move(cfg),
                                                       std::move(rng));
    }
    case DeploymentKind::kCloud: {
      cluster::CloudConfig cfg;
      cfg.num_servers = sc.cloud_servers();
      cfg.network = make_network(sc.cloud_rtt, sc.rtt_jitter);
      cfg.dispatch = sc.cloud_dispatch;
      cfg.dispatch_overhead = sc.cloud_dispatch_overhead;
      cfg.retry = sc.retry;
      if (trace != nullptr) cfg.link_faults = trace->cloud_link_schedule();
      // One edge site's worth of hardware per fault group: the CRN-paired
      // outage of edge site i takes down cloud servers [i*m, (i+1)*m).
      cfg.fault_group_size = sc.servers_per_site;
      return std::make_unique<cluster::CloudDeployment>(sim, std::move(cfg),
                                                        std::move(rng));
    }
    case DeploymentKind::kHybrid: {
      cluster::HybridConfig cfg;
      cfg.num_sites = sc.num_sites;
      cfg.servers_per_site = sc.servers_per_site;
      cfg.edge_speed = sc.edge_speed;
      cfg.edge_network = make_network(sc.edge_rtt, sc.rtt_jitter);
      cfg.cloud_servers = sc.cloud_servers();
      cfg.cloud_network = make_network(sc.cloud_rtt, sc.rtt_jitter);
      cfg.cloud_dispatch = sc.cloud_dispatch;
      cfg.offload_queue_threshold = sc.hybrid_offload_threshold;
      cfg.retry = sc.retry;
      cfg.site_link_faults = site_links(sc, trace);
      if (trace != nullptr) {
        cfg.cloud_link_faults = trace->cloud_link_schedule();
      }
      if (sc.state.enabled) {
        cfg.state = sc.state;
        cfg.state_retry = sc.state_pull_retry;
      }
      return std::make_unique<cluster::HybridDeployment>(sim, std::move(cfg),
                                                         std::move(rng));
    }
    case DeploymentKind::kElastic: {
      // The elastic fleet has no cache tier yet: scaling events would
      // invalidate per-site working sets in ways the current model does
      // not describe, so reject the combination loudly instead of
      // silently simulating a stateless fleet.
      HCE_EXPECT(!sc.state.enabled,
                 "stateful scenarios do not support kElastic yet");
      autoscale::ElasticEdgeConfig cfg;
      cfg.num_sites = sc.num_sites;
      cfg.initial_servers_per_site = sc.servers_per_site;
      cfg.speed = sc.edge_speed;
      cfg.network = make_network(sc.edge_rtt, sc.rtt_jitter);
      cfg.mu = sc.mu;
      // A fresh policy instance per deployment: the retention policy
      // keeps per-site timers, which must not leak across replications.
      switch (sc.elastic_rental) {
        case Scenario::RentalPolicy::kReactive:
          cfg.policy = autoscale::reactive_policy(sc.elastic_util_high,
                                                  sc.elastic_util_low);
          break;
        case Scenario::RentalPolicy::kFixedInterval:
          cfg.policy =
              autoscale::rental_fixed_interval_policy(sc.elastic_target_util);
          break;
        case Scenario::RentalPolicy::kRetention:
          cfg.policy = autoscale::rental_retention_policy(
              sc.elastic_target_util, sc.elastic_retention);
          break;
      }
      cfg.control_interval = sc.elastic_control_interval;
      // Cap the self-rescheduling control loop at the run horizon so the
      // calendar drains and sim.run() terminates without an `until`.
      cfg.control_horizon = sc.warmup + sc.duration;
      cfg.provision_delay = sc.elastic_provision_delay;
      // Rental policies carry their own hysteresis (the interval is the
      // commitment; retention defers releases) — an extra cooldown would
      // double-count it, so they release freely.
      cfg.scale_down_cooldown =
          sc.elastic_rental == Scenario::RentalPolicy::kReactive
              ? sc.elastic_scale_down_cooldown
              : 0.0;
      cfg.retry = sc.retry;
      cfg.site_link_faults = site_links(sc, trace);
      cfg.inter_site_rtt = sc.inter_site_rtt;
      return std::make_unique<autoscale::ElasticEdge>(sim, std::move(cfg),
                                                      std::move(rng));
    }
  }
  HCE_EXPECT(false, "make_deployment: unknown DeploymentKind");
  return nullptr;
}

cost::Usage dead_replication_usage(const Scenario& sc, DeploymentKind kind) {
  cost::Usage u;
  u.elapsed_seconds = sc.duration;
  const double edge_fleet = static_cast<double>(sc.num_sites) *
                            static_cast<double>(sc.servers_per_site);
  switch (kind) {
    case DeploymentKind::kCloud:
      u.cloud.provisioned_seconds =
          static_cast<double>(sc.cloud_servers()) * sc.duration;
      break;
    case DeploymentKind::kHybrid:
      u.cloud.provisioned_seconds =
          static_cast<double>(sc.cloud_servers()) * sc.duration;
      [[fallthrough]];
    case DeploymentKind::kEdge:
    case DeploymentKind::kElastic:
      u.edge.provisioned_seconds = edge_fleet * sc.duration;
      u.edge_site_seconds =
          static_cast<double>(sc.num_sites) * sc.duration;
      break;
  }
  return u;
}

}  // namespace hce::experiment
