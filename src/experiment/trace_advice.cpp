#include "experiment/trace_advice.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace hce::experiment {

core::DeploymentSpec deployment_spec_from_trace(
    const workload::TraceStats& stats,
    const TraceDeploymentGeometry& geometry) {
  HCE_EXPECT(!stats.sites.empty(), "trace advice: no sites in trace stats");
  HCE_EXPECT(stats.service_mean > 0.0,
             "trace advice: trace has no service demands");
  HCE_EXPECT(geometry.servers_per_site >= 1,
             "trace advice: servers_per_site >= 1");

  core::DeploymentSpec spec;
  spec.num_edge_sites = static_cast<int>(stats.sites.size());
  spec.servers_per_edge_site = geometry.servers_per_site;
  spec.cloud_servers =
      geometry.cloud_servers > 0
          ? geometry.cloud_servers
          : spec.num_edge_sites * geometry.servers_per_site;
  spec.edge_rtt = geometry.edge_rtt;
  spec.cloud_rtt = geometry.cloud_rtt;
  spec.mu_edge = spec.mu_cloud =
      geometry.mu > 0.0 ? geometry.mu : stats.implied_mu();
  spec.total_lambda = stats.total_rate;
  spec.site_weights = stats.weights();
  // The advisor takes CoVs, not SCVs; use the aggregate service CoV and
  // the (weight-averaged) per-site arrival CoV, which is what Lemma 3.2's
  // edge term sees.
  double arrival_scv = 0.0;
  for (const auto& s : stats.sites) {
    arrival_scv += s.weight * s.interarrival_scv;
  }
  spec.arrival_cov = std::sqrt(std::max(arrival_scv, 0.0));
  spec.service_cov = std::sqrt(std::max(stats.service_scv, 0.0));
  return spec;
}

core::AdvisorReport advise_from_trace(
    const workload::Trace& trace, const TraceDeploymentGeometry& geometry) {
  return core::advise(
      deployment_spec_from_trace(workload::analyze(trace), geometry));
}

}  // namespace hce::experiment
