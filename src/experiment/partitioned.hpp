// Partitioned replications: one scenario sharded across P conservative
// partitions (des/partition.hpp) so a single replication can spend every
// core of the machine instead of one.
//
// Layout. Edge sites split into contiguous blocks, one block per
// partition; the consolidated cloud and the state store live in
// partition 0 next to that partition's own site block. Every flow that
// crosses a shard boundary is, in the model, a WAN traversal — a cloud
// request/response or a state pull — so the mailbox lookahead is the
// *minimum one-way delay the network model can sample* (deployment_
// factory's min_one_way), which the jitter cap keeps strictly positive
// for any positive RTT. A zero-RTT cloud path therefore has zero
// lookahead and is rejected loudly by PartitionedSimulation::add_link.
//
// What stays where. Each shard owns its sites' stations, sources, retry
// clients, sinks, and (in remote mode) its state tier's full
// timeout/retry machinery; only generation-tagged requests cross
// partitions (cluster/remote.hpp), so a client that times out while its
// response is in flight sees the late response land as a duplicate —
// cancel semantics survive the boundary without cancel messages.
//
// Determinism. For a fixed P the output is bit-identical at any
// worker-thread count (the engine's drain-order contract). P=1 routes
// through detail::run_replication_on — the *same code* as the sequential
// runner, over partition 0 of a one-partition engine — so it reproduces
// the sequential hexfloat goldens exactly. P>1 is a statistical model
// change (per-shard RNG streams, shard-local redirect/failover rings),
// not a reordering of the sequential run: arrival/service/key streams
// keep their global per-site names, so the offered workload is
// CRN-paired with the sequential engine even though network draws differ.
#pragma once

#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "support/time.hpp"

namespace hce::experiment {

/// Static site -> partition assignment of one partitioned replication:
/// contiguous blocks (sites of one partition are neighbors, matching the
/// ring semantics of shard-local failover), every partition non-empty,
/// the cloud and the state store in partition 0.
struct PartitionPlan {
  int partitions = 1;
  std::vector<int> site_partition;  ///< global site -> owning partition
  std::vector<int> site_local;      ///< global site -> index in its shard
  std::vector<int> first_site;      ///< partition -> first global site
  std::vector<int> shard_sites;     ///< partition -> sites in the shard
};

/// Balanced contiguous-block plan. Requires 1 <= partitions <= num_sites.
PartitionPlan make_partition_plan(int num_sites, int partitions);

/// One replication of `sc` on sc.partitions conservative partitions,
/// driven by sc.partition_workers threads (0 = one per partition, capped
/// at the hardware). Requires the edge-vs-cloud pairing for P > 1.
/// run_replication dispatches here whenever sc.partitions != 1; call it
/// directly to force P=1 through the partitioned engine (the
/// golden-identity path of the determinism tests).
ReplicationOutput run_replication_partitioned(const Scenario& sc,
                                              Rate rate_per_server,
                                              int replication);

}  // namespace hce::experiment
