// Result serialization: turn sweep results into tables, CSV, and
// Markdown so downstream tooling (plots, CI dashboards, the EXPERIMENTS
// log) consumes one canonical format.
#pragma once

#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "support/table.hpp"

namespace hce::experiment {

/// Canonical table of a latency sweep: one row per rate with both sides'
/// mean/p50/p95/p99 (in ms), utilizations, and CI half-widths.
TextTable sweep_table(const std::vector<PointResult>& sweep);

/// CSV form of sweep_table (header + rows).
std::string sweep_csv(const std::vector<PointResult>& sweep);

/// GitHub-flavored Markdown form.
std::string sweep_markdown(const std::vector<PointResult>& sweep);

/// Writes the CSV to a file (throws ContractViolation on IO failure).
void save_sweep_csv(const std::vector<PointResult>& sweep,
                    const std::string& path);

}  // namespace hce::experiment
