// Result serialization: turn sweep results into tables, CSV, and
// Markdown so downstream tooling (plots, CI dashboards, the EXPERIMENTS
// log) consumes one canonical format.
#pragma once

#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "support/table.hpp"

namespace hce::experiment {

/// Canonical table of a latency sweep: one row per rate with both sides'
/// mean/p50/p95/p99 (in ms), utilizations, and CI half-widths.
TextTable sweep_table(const std::vector<PointResult>& sweep);

/// CSV form of sweep_table (header + rows).
std::string sweep_csv(const std::vector<PointResult>& sweep);

/// GitHub-flavored Markdown form.
std::string sweep_markdown(const std::vector<PointResult>& sweep);

/// Writes the CSV to a file (throws ContractViolation on IO failure).
void save_sweep_csv(const std::vector<PointResult>& sweep,
                    const std::string& path);

/// Decomposition table of an observe-enabled sweep: one row per rate with
/// both sides' network / wait / service / retry-penalty means (ms) plus
/// the inversion ledger — the edge's queueing penalty `w_edge - w_cloud`
/// against its network advantage `n_cloud - n_edge`. Rows whose scenario
/// ran without Scenario::observe print zeros (no breakdown collected).
TextTable breakdown_table(const std::vector<PointResult>& sweep);

/// CSV form of breakdown_table (header + rows).
std::string breakdown_csv(const std::vector<PointResult>& sweep);

/// GitHub-flavored Markdown form.
std::string breakdown_markdown(const std::vector<PointResult>& sweep);

/// Cost table of a sweep: one row per rate with both sides' metered bill
/// ($/h and its components: server rental, site rental, egress, interval
/// fees) plus egress GB and p99 (ms) — the raw material of a cost-latency
/// Pareto plot. Dollar figures come from SideStats::cost, i.e. metered
/// usage priced through the scenario's PriceModel.
TextTable cost_table(const std::vector<PointResult>& sweep);

/// CSV form of cost_table (header + rows).
std::string cost_csv(const std::vector<PointResult>& sweep);

/// GitHub-flavored Markdown form.
std::string cost_markdown(const std::vector<PointResult>& sweep);

}  // namespace hce::experiment
