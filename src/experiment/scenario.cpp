#include "experiment/scenario.hpp"

namespace hce::experiment {

const char* to_string(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kCloud: return "cloud";
    case DeploymentKind::kEdge: return "edge";
    case DeploymentKind::kHybrid: return "hybrid";
    case DeploymentKind::kElastic: return "elastic";
  }
  return "unknown";
}

namespace {
Scenario base_scenario(std::string name, Time cloud_rtt) {
  Scenario s;
  s.name = std::move(name);
  s.cloud_rtt = cloud_rtt;
  return s;
}
}  // namespace

Scenario Scenario::nearby_cloud() {
  // Edge in us-east-2 (Ohio), cloud in us-east-1 (Virginia): ~15 ms.
  return base_scenario("nearby-15ms", 0.015);
}

Scenario Scenario::typical_cloud() {
  // Edge in Ireland, cloud in Frankfurt (20-24 ms) / Ohio->Montreal
  // (25-28 ms): the paper's "typical" 25 ms case.
  return base_scenario("typical-25ms", 0.025);
}

Scenario Scenario::distant_cloud() {
  // Edge in us-east-2 (Ohio), cloud in us-west-1 (N. California):
  // 50-60 ms.
  return base_scenario("distant-54ms", 0.054);
}

Scenario Scenario::transcontinental_cloud() {
  // Edge in us-east-1, cloud in Ireland: > 80 ms.
  return base_scenario("transcontinental-80ms", 0.080);
}

}  // namespace hce::experiment
