// Adaptive experiment engine: spend simulated events where the answer is
// still uncertain, instead of uniformly across a dense grid.
//
// The uniform sweep (run_sweep) runs a fixed replication count at every
// rate. That wastes work twice: low-load points converge after a couple
// of replications while near-saturation points need many to reach the
// same confidence, and a crossover search over a dense rate grid
// simulates dozens of points when only the bracket around the sign
// change matters. This module replaces both with budget-aware variants:
//
//   * run_adaptive_sweep — pilot batch per point, then greedy allocation
//     of further replications to whichever point's worst-side relative
//     t-interval is widest, until every point meets `target_rel_ci` or
//     the budget runs out. Optionally warm-starts a point's pilot from
//     its left neighbor's measured spread.
//   * localize_crossover — bisection on the sign of the paired
//     edge-cloud metric difference: probe the bracket endpoints, then
//     halve the bracket until it is narrower than `rate_tol`. CRN
//     pairing makes the sign test sharp — both sides see the identical
//     workload, so the difference is not blurred by sampling noise.
//
// Determinism: RNG identity is keyed off the replication index exactly
// as in run_point — the adaptive schedule decides *how many*
// replications a point runs and in what order points execute, never
// which substream replication r draws from. A point that ends up with n
// replications therefore reports statistics bit-identical to
// run_point with scenario.replications = n (pinned by
// tests/experiment/test_adaptive.cpp), and every scheduling decision is
// a pure function of merged statistics in replication-index order, so
// results cannot depend on thread scheduling.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "experiment/crossover.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace hce::experiment {

/// Variance-aware replication scheduler configuration.
struct AdaptiveConfig {
  /// Replications every point runs before any adaptive decision — at
  /// least 2, so a spread estimate exists.
  int pilot_replications = 3;
  /// Hard per-point cap (the scheduler stops feeding a point that
  /// refuses to converge).
  int max_replications = 32;
  /// Total replication budget across the whole sweep; 0 = uncapped
  /// (each point runs until it converges or hits max_replications).
  int replication_budget = 0;
  /// Convergence target: mean_ci_half_width / mean of the *worst* side
  /// must drop to this before a point counts as converged.
  double target_rel_ci = 0.05;
  /// Seed each point's pilot size from the left neighbor's measured
  /// spread (neighboring rates have similar variance, so a noisy
  /// neighbor predicts a noisy point — skip the rounds that would just
  /// rediscover that).
  bool warm_start = true;
};

/// One adaptively sampled sweep point plus its sampling provenance.
struct AdaptivePoint {
  PointResult result;
  int replications = 0;       ///< replications actually run
  std::uint64_t events = 0;   ///< calendar events those replications cost
  bool converged = false;     ///< met target_rel_ci (vs budget exhausted)
};

struct AdaptiveSweepResult {
  std::vector<AdaptivePoint> points;  ///< matches the rate-axis order
  int total_replications = 0;
  std::uint64_t total_events = 0;

  bool all_converged() const {
    for (const AdaptivePoint& p : points) {
      if (!p.converged) return false;
    }
    return true;
  }
};

/// Runs the rate axis under the variance-aware scheduler. Replications
/// execute sequentially in deterministic order; every reported statistic
/// is bit-identical to a uniform run_point with the same final
/// replication count.
AdaptiveSweepResult run_adaptive_sweep(const Scenario& scenario,
                                       const std::vector<Rate>& rates,
                                       const AdaptiveConfig& config = {});

/// Bisection crossover localizer configuration.
struct BisectConfig {
  /// Stop once the bracket is at most this wide (req/s per server).
  double rate_tol = 0.25;
  /// Cap on probed rates, endpoints included (the bracket halves per
  /// probe, so 16 probes resolve a 12 req/s axis to ~0.001 req/s).
  int max_probes = 16;
};

/// Bisection outcome. When the endpoints straddle a sign change the
/// final bracket satisfies diff(lo) <= 0 < diff(hi) with
/// hi - lo <= rate_tol (budget permitting), and `crossover` is the
/// linear interpolation of the two bracket probes — the same estimator
/// find_crossover applies between dense-grid neighbors, so the two
/// methods agree up to curvature of the latency difference.
struct BisectResult {
  bool bracketed = false;  ///< endpoints straddled a sign change
  Rate lo = 0.0;           ///< final bracket: edge at or below cloud here
  Rate hi = 0.0;           ///< final bracket: edge above cloud here
  std::optional<Crossover> crossover;
  int probes = 0;                 ///< run_point-equivalent probes spent
  std::uint64_t total_events = 0; ///< calendar events across all probes
};

/// Localizes the rate where the edge metric rises above the cloud metric
/// within [lo, hi] by bisection on the paired difference's sign. Each
/// probe runs scenario.replications CRN-paired replications. If the
/// endpoints do not straddle a sign change, returns bracketed = false
/// after the two endpoint probes (the caller widens the bracket or falls
/// back to a dense sweep).
BisectResult localize_crossover(const Scenario& scenario, Metric metric,
                                Rate lo, Rate hi,
                                const BisectConfig& config = {});

}  // namespace hce::experiment
