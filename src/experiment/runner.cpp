#include "experiment/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <thread>

#include "cluster/deployment_base.hpp"
#include "cluster/source.hpp"
#include "des/simulation.hpp"
#include "dist/distribution.hpp"
#include "dist/weights.hpp"
#include "dist/zipf.hpp"
#include "experiment/deployment_factory.hpp"
#include "experiment/partitioned.hpp"
#include "faults/fault.hpp"
#include "obs/sampler.hpp"
#include "stats/ci.hpp"
#include "stats/quantiles.hpp"
#include "stats/summary.hpp"
#include "support/contracts.hpp"

namespace hce::experiment {

ReserveHints replication_reserve_hints(const Scenario& sc,
                                       Rate rate_per_server) {
  const Rate total_rate =
      rate_per_server * static_cast<double>(sc.cloud_servers());
  const Time horizon = sc.warmup + sc.duration;
  ReserveHints h;
  // Sinks hold ~rate * horizon completions (warmup records are dropped
  // later but buffered briefly); the calendar's pending-event population
  // and the in-flight request population are both roughly the arrivals of
  // one response window — a round-trip's worth, plus one armed timeout
  // per pending retry.
  h.completions = static_cast<std::size_t>(total_rate * horizon * 1.05) + 64;
  const Time inflight_window =
      1.0 + (sc.retry.enabled ? sc.retry.timeout : 0.0);
  h.pending_events =
      static_cast<std::size_t>(total_rate * inflight_window) + 256;
  h.inflight = h.pending_events;
  return h;
}

ReplicationOutput detail::run_replication_on(
    const Scenario& sc, Rate rate_per_server, int replication,
    des::Simulation& sim, const std::function<void()>& run_calendar) {
  HCE_EXPECT(rate_per_server > 0.0, "rate must be positive");
  HCE_EXPECT(rate_per_server < sc.mu,
             "offered per-server rate must be below saturation");
  Rng rng =
      Rng(sc.seed).stream("replication", static_cast<std::uint64_t>(replication));

  const Time horizon = sc.warmup + sc.duration;

  // Materialize the fault schedule first (from its own substream) so the
  // identical trace drives both deployments below: the same machines
  // crash at the same instants whether they are deployed as k edge sites
  // or as k server groups of the consolidated cloud (CRN pairing of
  // hardware faults).
  faults::FaultTrace trace;
  const bool faulted = sc.faults.any();
  if (faulted) {
    trace = faults::FaultTrace::generate(sc.faults, sc.num_sites, horizon,
                                         rng.stream("faults"));
    // Dead-replication short-circuit: when every site is provably down
    // for the whole horizon on both sides, not one request can be
    // delivered, so the replication contributes nothing to any latency
    // statistic (zero-delivery replications are excluded from the merge).
    // Skip the simulation entirely and report the skip through
    // SideStats::dead_replications. Client-side offered/timeout counters
    // of the skipped run are deliberately not synthesized — a replication
    // that cannot serve anything is accounted as dead, not as a stream
    // of timeouts.
    if (trace.blackout() && outages_apply(sc, sc.side_a) &&
        outages_apply(sc, sc.side_b)) {
      ReplicationOutput out;
      out.dead = true;
      // Cost is NOT skipped: a blacked-out fleet is still provisioned,
      // and the operator still pays for it. Synthesize the idle usage so
      // the meter and SideStats::utilization (which excludes dead
      // replications) stay consistent by construction.
      out.edge_usage = dead_replication_usage(sc, sc.side_a);
      out.cloud_usage = dead_replication_usage(sc, sc.side_b);
      const auto n = static_cast<std::size_t>(sc.num_sites);
      out.site_downtime.resize(n);
      for (int s = 0; s < sc.num_sites; ++s) {
        out.site_downtime[static_cast<std::size_t>(s)] =
            trace.site_downtime_fraction(s);
      }
      out.site_mean_latency.assign(n, 0.0);
      out.site_utilization.assign(n, 0.0);
      return out;
    }
  }

  // Both sides come from the factory: any DeploymentKind pair runs under
  // the identical mirrored workload. Each side samples its network from
  // its own named substream (disambiguated by index when a scenario pairs
  // a kind with itself — stream derivation is order-independent).
  const faults::FaultTrace* trace_ptr = faulted ? &trace : nullptr;
  const char* name_a = network_stream_name(sc.side_a);
  const char* name_b = network_stream_name(sc.side_b);
  std::unique_ptr<cluster::Deployment> side_a =
      make_deployment(sim, sc, sc.side_a, trace_ptr, rng.stream(name_a));
  std::unique_ptr<cluster::Deployment> side_b = make_deployment(
      sim, sc, sc.side_b, trace_ptr,
      sc.side_b == sc.side_a ? rng.stream(name_b, 1) : rng.stream(name_b));
  cluster::Deployment& a = *side_a;
  cluster::Deployment& b = *side_b;

  // Thread the crash/recover schedule onto the calendar. Site i fails at
  // the same instants on every side that hosts the failing machines
  // (edge-like kinds directly, the cloud via mirror_to_cloud's server
  // groups); all transitions of one outage are scheduled back-to-back so
  // their calendar order is fixed by construction, not by floating-point
  // coincidence.
  if (faulted) {
    const bool fault_a = outages_apply(sc, sc.side_a);
    const bool fault_b = outages_apply(sc, sc.side_b);
    cluster::Deployment* ap = side_a.get();
    cluster::Deployment* bp = side_b.get();
    for (int s = 0; s < sc.num_sites; ++s) {
      for (const faults::Outage& o :
           trace.site_outages[static_cast<std::size_t>(s)]) {
        if (fault_a) {
          sim.schedule_at(o.start, [ap, s] { ap->set_site_up(s, false); });
          sim.schedule_at(o.end, [ap, s] { ap->set_site_up(s, true); });
        }
        if (fault_b) {
          sim.schedule_at(o.start, [bp, s] { bp->set_site_up(s, false); });
          sim.schedule_at(o.end, [bp, s] { bp->set_site_up(s, true); });
        }
      }
    }
  }

  // Service model: target mean 1/mu including the fixed overhead, so the
  // offered utilization rate/mu is exact regardless of the overhead knob.
  const Time mean_service = 1.0 / sc.mu;
  HCE_EXPECT(sc.request_overhead < mean_service,
             "request_overhead must be below the mean service time");
  const Time stochastic_mean = mean_service - sc.request_overhead;
  // Keep the *total* service CoV at sc.service_cov: the stochastic part
  // must have cov' = cov * mean / stochastic_mean.
  const double part_cov =
      sc.service_cov * mean_service / stochastic_mean;
  workload::ServicePtr service = workload::from_distribution(dist::shifted(
      dist::by_cov(stochastic_mean, part_cov), sc.request_overhead));

  // Spatial split. rate_per_server is the balanced per-server rate; with
  // weights w_i, site i receives w_i * total.
  const std::vector<double> weights =
      sc.site_weights.empty() ? dist::uniform_weights(sc.num_sites)
                              : dist::normalized(sc.site_weights);
  HCE_EXPECT(static_cast<int>(weights.size()) == sc.num_sites,
             "site_weights size mismatch");
  const Rate total_rate =
      rate_per_server * static_cast<double>(sc.cloud_servers());

  // Pre-size every buffer the measurement touches — sinks, calendar, and
  // the deployments' in-flight request pools — from the offered-load
  // hints, so nothing reallocates mid-measurement (the invariant tests
  // assert pool_high_water() stays under hints.inflight).
  const ReserveHints hints = replication_reserve_hints(sc, rate_per_server);
  a.sink().reserve(hints.completions);
  b.sink().reserve(hints.completions);
  sim.reserve(hints.pending_events);
  a.reserve_inflight(hints.inflight);
  b.reserve_inflight(hints.inflight);

  // Stateful workloads: one alias table shared by every site's source
  // (construction is O(key_space), sampling O(1)); each site draws its
  // keys from a dedicated "keys" substream so enabling state perturbs
  // neither arrival nor service sampling.
  std::shared_ptr<const dist::ZipfSampler> keys;
  if (sc.state.enabled) {
    keys = std::make_shared<const dist::ZipfSampler>(sc.state.key_space,
                                                     sc.state.zipf_theta);
  }

  std::vector<std::unique_ptr<cluster::MirroredSource>> sources;
  sources.reserve(weights.size());
  for (int site = 0; site < sc.num_sites; ++site) {
    const Rate site_rate = total_rate * weights[static_cast<std::size_t>(site)];
    if (site_rate <= 0.0) continue;
    auto arrivals = workload::renewal_rate_cov(site_rate, sc.arrival_cov);
    sources.push_back(std::make_unique<cluster::MirroredSource>(
        sim, std::move(arrivals), service, site,
        [&a](des::Request r) { a.submit(std::move(r)); },
        [&b](des::Request r) { b.submit(std::move(r)); },
        rng.stream("source", static_cast<std::uint64_t>(site))));
    if (keys) {
      sources.back()->set_key_sampler(
          keys, rng.stream("keys", static_cast<std::uint64_t>(site)));
    }
    sources.back()->start(sc.warmup + sc.duration);
  }

  // Reset station statistics at the end of warmup.
  sim.schedule_at(sc.warmup, [&] {
    a.reset_stats();
    b.reset_stats();
  });

  // Optional time-series observability. Sampler ticks are read-only
  // calendar events that consume no RNG draw, so interleaving them leaves
  // every reported statistic bit-identical (pinned by the observe-on
  // determinism test); with observe off, nothing is scheduled at all.
  std::optional<obs::Sampler> sampler_a, sampler_b;
  if (sc.observe) {
    sampler_a.emplace(sim);
    sampler_b.emplace(sim);
    a.instrument(*sampler_a);
    b.instrument(*sampler_b);
    sampler_a->start(sc.obs_sample_interval, horizon);
    sampler_b->start(sc.obs_sample_interval, horizon);
  }

  run_calendar();
  // Trailing sampler ticks may fire after the last real event (the run
  // can drain before the horizon); rewind the clock to the last activity
  // so every time-average below sees the exact denominator it would have
  // seen with observe off — utilization is bit-identical either way.
  if (sc.observe) sim.rewind_to_last_activity();

  a.sink().drop_before(sc.warmup);
  b.sink().drop_before(sc.warmup);

  // Results land in the historically named slots: side_a -> the `edge`
  // fields, side_b -> the `cloud` fields. The default pairing keeps the
  // names literal; any other pairing reads them as "side a" / "side b".
  ReplicationOutput out;
  out.events = sim.events_executed();
  out.edge_latencies = a.sink().latencies();
  out.cloud_latencies = b.sink().latencies();
  out.edge_utilization = a.utilization();
  out.cloud_utilization = b.utilization();
  out.edge_redirects = a.redirects();
  out.edge_failovers = a.failovers();
  out.edge_client = a.client_stats();
  out.cloud_client = b.client_stats();
  out.edge_dropped = a.dropped();
  out.cloud_dropped = b.dropped();
  out.edge_cache = a.cache_stats();
  out.cloud_cache = b.cache_stats();
  out.edge_pulls = a.pull_stats();
  out.cloud_pulls = b.pull_stats();
  out.edge_usage = a.cost_usage();
  out.cloud_usage = b.cost_usage();
  out.site_downtime.resize(static_cast<std::size_t>(sc.num_sites), 0.0);
  if (faulted) {
    for (int s = 0; s < sc.num_sites; ++s) {
      out.site_downtime[static_cast<std::size_t>(s)] =
          trace.site_downtime_fraction(s);
    }
  }
  out.site_mean_latency.resize(static_cast<std::size_t>(sc.num_sites));
  out.site_utilization.resize(static_cast<std::size_t>(sc.num_sites));
  for (int s = 0; s < sc.num_sites; ++s) {
    const auto su = static_cast<std::size_t>(s);
    out.site_mean_latency[su] = a.sink().latency_summary(s).mean();
    out.site_utilization[su] = a.site_utilization(s);
  }
  out.edge_pool_high_water = a.pool_high_water();
  out.cloud_pool_high_water = b.pool_high_water();
  if (sc.observe) {
    out.edge_records = a.sink().records();
    out.cloud_records = b.sink().records();
    out.edge_series = sampler_a->take_result();
    out.cloud_series = sampler_b->take_result();
  }
  return out;
}

ReplicationOutput run_replication(const Scenario& sc, Rate rate_per_server,
                                  int replication) {
  // Partitioned replications (including the P=1 golden-identity path when
  // requested explicitly) live in experiment/partitioned.cpp.
  if (sc.partitions != 1) {
    return run_replication_partitioned(sc, rate_per_server, replication);
  }
  des::Simulation sim;
  return detail::run_replication_on(sc, rate_per_server, replication, sim,
                                    [&sim] { sim.run(); });
}

namespace {

/// Per-worker scratch buffers, reused across sweep points so the merge
/// stage stops reallocating once the first point has sized them (the
/// buffers grow to the largest point's sample count and stay there).
struct PointScratch {
  std::vector<ReplicationOutput> reps;
  std::vector<const des::RecordColumns*> recs;  ///< merge_breakdown view
  std::vector<double> all;        ///< merged latency samples (sorted)
  std::vector<double> rep_means;  ///< per-replication means for the CI
};

/// Merges one side of an ordered replication set. Reads the outputs
/// without consuming them, so the adaptive engine can re-merge a growing
/// set after each allocation round.
SideStats merge_side(const Scenario& sc,
                     const std::vector<ReplicationOutput>& reps, bool edge,
                     bool observe, PointScratch& scratch) {
  SideStats s;
  // Cost meter: usage merged in replication order (dead replications
  // included — their synthesized idle fleet is billed), priced once.
  cost::Meter meter(sc.cost, sc.price);
  for (const ReplicationOutput& r : reps) {
    const cluster::ClientStats& c = edge ? r.edge_client : r.cloud_client;
    s.offered += c.offered;
    s.retries += c.retries;
    s.timeouts += c.timeouts;
    const state::CacheStats& cs = edge ? r.edge_cache : r.cloud_cache;
    s.cache_lookups += cs.lookups;
    s.cache_hits += cs.hits;
    s.cache_misses += cs.misses;
    const state::PullStats& p = edge ? r.edge_pulls : r.cloud_pulls;
    s.state_pulls += p.issued;
    s.pulls_abandoned += p.abandoned;
    meter.add(edge ? r.edge_usage : r.cloud_usage);
  }
  s.cost.usage = meter.usage();
  s.cost.bill = meter.bill();
  if (s.cache_lookups > 0) {
    s.cache_hit_rate = static_cast<double>(s.cache_hits) /
                       static_cast<double>(s.cache_lookups);
  }
  if (s.offered > 0) {
    s.timeout_rate =
        static_cast<double>(s.timeouts) / static_cast<double>(s.offered);
    s.availability = 1.0 - s.timeout_rate;
  }
  if (observe && !reps.empty()) {
    scratch.recs.clear();
    for (const ReplicationOutput& r : reps) {
      scratch.recs.push_back(edge ? &r.edge_records : &r.cloud_records);
    }
    s.breakdown = obs::merge_breakdown(scratch.recs);
  }
  // Utilization over the same replication set as every latency statistic:
  // replications that delivered zero requests are excluded here exactly
  // as they are from the mean/quantiles/CI below (and counted as dead),
  // so a faulted point cannot mix "utilization of a dead replication"
  // into the average of the replications its latencies describe.
  std::vector<double>& all = scratch.all;
  std::vector<double>& rep_means = scratch.rep_means;
  all.clear();
  rep_means.clear();
  double u = 0.0;
  std::size_t contributing = 0;
  for (const ReplicationOutput& r : reps) {
    const std::vector<double>& rep =
        edge ? r.edge_latencies : r.cloud_latencies;
    if (rep.empty()) {
      ++s.dead_replications;
      continue;
    }
    u += edge ? r.edge_utilization : r.cloud_utilization;
    ++contributing;
    stats::Summary sum;
    for (double x : rep) sum.add(x);
    rep_means.push_back(sum.mean());
    all.insert(all.end(), rep.begin(), rep.end());
  }
  s.utilization = contributing > 0 ? u / static_cast<double>(contributing)
                                   : 0.0;
  if (all.empty()) return s;
  // The golden-pinned mean is the Welford sum over the *sorted* pooled
  // vector — the sort is load-bearing for bit-identity, do not replace it
  // with a selection chain.
  std::sort(all.begin(), all.end());
  stats::Summary total;
  for (double x : all) total.add(x);
  s.mean = total.mean();
  s.p50 = stats::quantile_sorted(all, 0.50);
  s.p95 = stats::quantile_sorted(all, 0.95);
  s.p99 = stats::quantile_sorted(all, 0.99);
  s.samples = all.size();
  if (rep_means.size() >= 2) {
    s.mean_ci_half_width = stats::replication_ci(rep_means).half_width;
  }
  return s;
}

PointResult merge_point(const Scenario& sc, Rate rate_per_server,
                        const std::vector<ReplicationOutput>& reps,
                        PointScratch& scratch) {
  PointResult pr;
  pr.rate_per_server = rate_per_server;
  pr.rho_offered = rate_per_server / sc.mu;
  for (const ReplicationOutput& r : reps) {
    pr.edge_redirects += r.edge_redirects;
    pr.edge_failovers += r.edge_failovers;
  }
  pr.edge = merge_side(sc, reps, /*edge=*/true, sc.observe, scratch);
  pr.cloud = merge_side(sc, reps, /*edge=*/false, sc.observe, scratch);
  return pr;
}

PointResult run_point_scratch(const Scenario& sc, Rate rate_per_server,
                              PointScratch& scratch) {
  scratch.reps.clear();
  scratch.reps.reserve(static_cast<std::size_t>(sc.replications));
  for (int r = 0; r < sc.replications; ++r) {
    scratch.reps.push_back(run_replication(sc, rate_per_server, r));
  }
  return merge_point(sc, rate_per_server, scratch.reps, scratch);
}

}  // namespace

PointResult merge_replications(const Scenario& sc, Rate rate_per_server,
                               const std::vector<ReplicationOutput>& reps) {
  PointScratch scratch;
  return merge_point(sc, rate_per_server, reps, scratch);
}

PointResult run_point(const Scenario& sc, Rate rate_per_server) {
  PointScratch scratch;
  return run_point_scratch(sc, rate_per_server, scratch);
}

std::vector<PointResult> run_sweep(const Scenario& sc,
                                   const std::vector<Rate>& rates,
                                   int max_threads) {
  HCE_EXPECT(!rates.empty(), "run_sweep: empty rate axis");
  std::vector<PointResult> results(rates.size());
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const unsigned workers = std::min<unsigned>(
      max_threads > 0 ? static_cast<unsigned>(max_threads) : hw,
      static_cast<unsigned>(rates.size()));

  if (workers <= 1) {
    PointScratch scratch;  // reused across every point of the sweep
    for (std::size_t i = 0; i < rates.size(); ++i) {
      results[i] = run_point_scratch(sc, rates[i], scratch);
    }
    return results;
  }

  // Exceptions thrown at a sweep point (e.g. a saturated rate tripping
  // run_replication's contract) must not escape a worker thread — that
  // would call std::terminate. Each worker captures its point's exception
  // by index; after the pool drains, the lowest-indexed one is rethrown,
  // so the caller sees the same exception regardless of thread schedule.
  std::vector<std::exception_ptr> errors(rates.size());
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      PointScratch scratch;  // one per worker, reused across its points
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= rates.size() || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          results[i] = run_point_scratch(sc, rates[i], scratch);
        } catch (...) {
          errors[i] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (failed.load()) {
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
  return results;
}

std::vector<Rate> paper_rate_axis() {
  return {6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0};
}

std::vector<Rate> fine_rate_axis() {
  std::vector<Rate> axis;
  for (double r = 1.0; r <= 12.5; r += 0.5) axis.push_back(r);
  return axis;
}

}  // namespace hce::experiment
