#include "experiment/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/contracts.hpp"

namespace hce::experiment {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Worst-side relative CI half-width of a merged point. A side with
/// delivered samples but fewer than two contributing replications
/// reports infinity (no spread estimate exists yet — the point cannot be
/// declared converged by luck); a side that delivered nothing imposes no
/// requirement (more replications of a dead point buy no information).
double relative_ci(const PointResult& pr, int replications) {
  double rel = 0.0;
  for (const SideStats* s : {&pr.edge, &pr.cloud}) {
    if (s->samples == 0) continue;
    const auto contributing =
        static_cast<std::uint64_t>(replications) - s->dead_replications;
    if (contributing < 2) return kInf;
    if (s->mean <= 0.0) continue;
    rel = std::max(rel, s->mean_ci_half_width / s->mean);
  }
  return rel;
}

/// Predicts the replication count needed to shrink a measured relative
/// half-width `rel` (from `n` replications) to `target`: the half-width
/// scales ~ 1/sqrt(n), so n* = n * (rel/target)^2. Ignoring the
/// t-quantile's own shrink with n makes this a slight overestimate —
/// the greedy loop trims any excess one replication at a time anyway.
int predict_replications(double rel, int n, double target) {
  if (!(rel > 0.0) || !std::isfinite(rel)) return n;
  const double ratio = rel / target;
  const double pred = std::ceil(static_cast<double>(n) * ratio * ratio);
  if (pred >= 1e9) return 1 << 30;
  return static_cast<int>(pred);
}

/// Per-point adaptive state: outputs stored by replication index, so a
/// merge over 0..n-1 is bit-identical to a uniform n-replication point.
struct PointState {
  std::vector<ReplicationOutput> outs;
  PointResult merged;
  std::uint64_t events = 0;
};

}  // namespace

AdaptiveSweepResult run_adaptive_sweep(const Scenario& sc,
                                       const std::vector<Rate>& rates,
                                       const AdaptiveConfig& cfg) {
  HCE_EXPECT(!rates.empty(), "run_adaptive_sweep: empty rate axis");
  HCE_EXPECT(cfg.pilot_replications >= 2,
             "adaptive pilot needs >= 2 replications for a spread estimate");
  HCE_EXPECT(cfg.max_replications >= cfg.pilot_replications,
             "max_replications must be >= pilot_replications");
  HCE_EXPECT(cfg.target_rel_ci > 0.0, "target_rel_ci must be positive");

  std::vector<PointState> pts(rates.size());
  int spent = 0;
  const auto budget_left = [&] {
    return cfg.replication_budget <= 0 || spent < cfg.replication_budget;
  };
  const auto run_one = [&](std::size_t i) {
    PointState& p = pts[i];
    // RNG identity is the replication index — the schedule never touches
    // what replication r draws, only whether it runs.
    p.outs.push_back(run_replication(sc, rates[i],
                                     static_cast<int>(p.outs.size())));
    p.events += p.outs.back().events;
    ++spent;
  };
  const auto remerge = [&](std::size_t i) {
    pts[i].merged = merge_replications(sc, rates[i], pts[i].outs);
  };

  // Pilot stage, in rate order. With warm_start, a point's pilot size is
  // the replication count its left neighbor's spread predicts it needs
  // (clamped to [pilot, max]) — neighboring rates have similar variance,
  // so this skips allocation rounds that would rediscover the neighbor's
  // noise level point by point.
  for (std::size_t i = 0; i < rates.size(); ++i) {
    int pilot = cfg.pilot_replications;
    if (cfg.warm_start && i > 0 && !pts[i - 1].outs.empty()) {
      const PointState& nb = pts[i - 1];
      const int n_nb = static_cast<int>(nb.outs.size());
      const double rel_nb = relative_ci(nb.merged, n_nb);
      if (std::isfinite(rel_nb)) {
        // Trust a neighbor's prediction only up to 4x the replications
        // it is based on: a 2-replication spread estimate is chi-square
        // with one degree of freedom, noisy enough to demand the cap
        // outright. The greedy loop tops the point up if the bounded
        // pilot proves too small.
        const int trusted = std::min(cfg.max_replications, 4 * n_nb);
        pilot = std::clamp(
            predict_replications(rel_nb, n_nb, cfg.target_rel_ci),
            cfg.pilot_replications, trusted);
      }
    }
    while (static_cast<int>(pts[i].outs.size()) < pilot && budget_left()) {
      run_one(i);
    }
    remerge(i);
  }

  // Greedy refinement: one replication at a time to the point whose
  // worst-side relative CI is widest (ties break to the lowest index),
  // until every point converges, caps out, or the budget is gone. Every
  // decision reads only merged statistics of replication-index-ordered
  // outputs, so the schedule is a deterministic function of the inputs.
  while (budget_left()) {
    std::size_t widest = rates.size();
    double widest_rel = cfg.target_rel_ci;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      if (static_cast<int>(pts[i].outs.size()) >= cfg.max_replications) {
        continue;
      }
      const double rel =
          relative_ci(pts[i].merged, static_cast<int>(pts[i].outs.size()));
      if (rel > widest_rel) {
        widest_rel = rel;
        widest = i;
      }
    }
    if (widest == rates.size()) break;  // all converged or capped
    run_one(widest);
    remerge(widest);
  }

  AdaptiveSweepResult out;
  out.points.resize(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    AdaptivePoint& p = out.points[i];
    p.result = std::move(pts[i].merged);
    p.replications = static_cast<int>(pts[i].outs.size());
    p.events = pts[i].events;
    p.converged =
        relative_ci(p.result, p.replications) <= cfg.target_rel_ci;
    out.total_replications += p.replications;
    out.total_events += p.events;
  }
  return out;
}

namespace {

/// One CRN-paired probe: scenario.replications replications at `rate`,
/// merged through the runner's deterministic merge path.
PointResult probe(const Scenario& sc, Rate rate, std::uint64_t& events) {
  std::vector<ReplicationOutput> outs;
  outs.reserve(static_cast<std::size_t>(sc.replications));
  for (int r = 0; r < sc.replications; ++r) {
    outs.push_back(run_replication(sc, rate, r));
    events += outs.back().events;
  }
  return merge_replications(sc, rate, outs);
}

double diff_of(const PointResult& pr, Metric m) {
  return metric_of(pr.edge, m) - metric_of(pr.cloud, m);
}

}  // namespace

BisectResult localize_crossover(const Scenario& sc, Metric metric, Rate lo,
                                Rate hi, const BisectConfig& cfg) {
  HCE_EXPECT(lo > 0.0 && hi > lo, "localize_crossover: need 0 < lo < hi");
  HCE_EXPECT(cfg.rate_tol > 0.0, "rate_tol must be positive");
  HCE_EXPECT(cfg.max_probes >= 2, "need at least the two endpoint probes");

  BisectResult out;
  PointResult at_lo = probe(sc, lo, out.total_events);
  PointResult at_hi = probe(sc, hi, out.total_events);
  out.probes = 2;
  double d_lo = diff_of(at_lo, metric);
  double d_hi = diff_of(at_hi, metric);
  out.lo = lo;
  out.hi = hi;
  // The inversion is the *rising* crossing: edge at or below the cloud at
  // lo, strictly above at hi. Anything else means the bracket missed it.
  if (!(d_lo <= 0.0 && d_hi > 0.0)) return out;
  out.bracketed = true;

  while (out.hi - out.lo > cfg.rate_tol && out.probes < cfg.max_probes) {
    const Rate mid = 0.5 * (out.lo + out.hi);
    const PointResult at_mid = probe(sc, mid, out.total_events);
    ++out.probes;
    const double d_mid = diff_of(at_mid, metric);
    if (d_mid > 0.0) {
      out.hi = mid;
      at_hi = at_mid;
      d_hi = d_mid;
    } else {
      out.lo = mid;
      at_lo = at_mid;
      d_lo = d_mid;
    }
  }

  // Interpolate inside the final bracket — the same linear estimator
  // find_crossover applies between adjacent dense-grid points.
  Crossover c;
  c.rate = d_hi > d_lo
               ? out.lo + (0.0 - d_lo) / (d_hi - d_lo) * (out.hi - out.lo)
               : out.hi;
  c.utilization = c.rate / sc.mu;
  out.crossover = c;
  return out;
}

}  // namespace hce::experiment
