// Deployment factory: one Scenario, any DeploymentKind.
//
// Every hand-built Edge/Cloud/Hybrid/Elastic config in the experiment
// layer funnels through make_deployment(), so a sweep, a crossover
// search, a trace replay, or a fault drill can compare *any* pair of
// deployment shapes — the §5 design-implication space — with identical
// scenario knobs, CRN-paired fault traces, and the shared RetryClient
// semantics.
//
// Split of responsibilities: the factory wires everything that lives
// inside one deployment (networks with capped jitter, retry policy,
// link-fault schedules); the *caller* wires site outages through
// Deployment::set_site_up, because the two sides' crash/recover events
// must interleave deterministically on one calendar (see
// runner.cpp's wiring loop).
#pragma once

#include <memory>

#include "cluster/deployment_base.hpp"
#include "cluster/network.hpp"
#include "des/simulation.hpp"
#include "experiment/scenario.hpp"
#include "faults/fault.hpp"
#include "support/rng.hpp"

namespace hce::experiment {

/// RNG substream label for a kind's network sampling. Distinct per kind
/// ("edge-net", "cloud-net", "hybrid-net", "elastic-net") so paired sides
/// draw independent jitter; when a scenario pairs a kind with itself the
/// caller disambiguates with stream(label, 1).
const char* network_stream_name(DeploymentKind kind);

/// Whether the trace's site outages crash this kind's sites directly.
/// Edge-like kinds host the failing machines themselves; the cloud is
/// only affected when faults.mirror_to_cloud maps each edge-site outage
/// onto the corresponding server group.
bool outages_apply(const Scenario& scenario, DeploymentKind kind);

/// NetworkModel from an RTT and a uniform +/- jitter half-width, with the
/// jitter capped at 80% of the RTT so a +/-2 ms spread configured for the
/// cloud path cannot dominate (or invert) a 1 ms edge path.
cluster::NetworkModel make_network(Time rtt, Time jitter);

/// Minimum one-way delay make_network(rtt, jitter) can ever sample:
/// (rtt - min(jitter, 0.8 * rtt)) / 2 — strictly positive for any
/// positive RTT thanks to the jitter cap. The partitioned engine derives
/// its cross-partition lookahead from this floor, so the conservative
/// window protocol is provably safe for every draw the model can produce.
Time min_one_way(Time rtt, Time jitter);

/// Builds one deployment of `kind` from the scenario's knobs. `trace` may
/// be null (fault-free); when set, the kind's link-fault schedules are
/// attached here. Site outages are NOT wired here — callers schedule them
/// via Deployment::set_site_up (see outages_apply).
std::unique_ptr<cluster::Deployment> make_deployment(
    des::Simulation& sim, const Scenario& scenario, DeploymentKind kind,
    const faults::FaultTrace* trace, Rng rng);

/// Synthesized usage of a dead replication (the mttf==0 blackout
/// short-circuit skips simulation entirely): the configured fleet is
/// provisioned-but-idle for the whole measurement window — an operator
/// pays for a blacked-out deployment — with zero busy time and zero WAN
/// traffic. Elastic fleets are billed at their initial size (the control
/// loop never ran). Keeps SideStats::utilization (which excludes dead
/// replications from its mean) and the cost meter (which must not drop
/// them) consistent by construction.
cost::Usage dead_replication_usage(const Scenario& scenario,
                                   DeploymentKind kind);

}  // namespace hce::experiment
