// Experiment runner: simulate a Scenario at given request rates and
// collect paired edge/cloud latency statistics.
//
// Pairing: each site's request stream is generated once and mirrored to
// both deployments (common random numbers), so the edge-cloud difference
// at a sweep point is not blurred by sampling noise. Replications use
// independent seed substreams and run in parallel worker threads; results
// are merged deterministically (ordered by replication index, so thread
// scheduling cannot change any reported number).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "cluster/deployment.hpp"
#include "cost/meter.hpp"
#include "experiment/scenario.hpp"
#include "obs/breakdown.hpp"
#include "obs/sampler.hpp"
#include "state/cache.hpp"
#include "state/state.hpp"
#include "support/time.hpp"

namespace hce::experiment {

/// Statistics of one deployment at one sweep point (merged replications).
/// Latency statistics cover *delivered* requests; the fault-accounting
/// counters (offered/retries/timeouts) restore the requests that never
/// came back, and `availability` is the fraction of offered requests not
/// abandoned by the client's retry budget (1.0 in fault-free runs).
struct SideStats {
  double mean = 0.0;   ///< mean end-to-end latency (s)
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean_ci_half_width = 0.0;  ///< t-interval across replications
  /// Time-average server utilization, averaged over the same replication
  /// set as every latency statistic (replications that delivered zero
  /// requests are excluded; 0 when none delivered any).
  double utilization = 0.0;
  std::uint64_t samples = 0;
  /// Replications excluded from every latency statistic because they
  /// delivered zero requests — including those the runner short-circuited
  /// without simulating because their fault trace provably blacked out
  /// the whole horizon (FaultTrace::blackout).
  std::uint64_t dead_replications = 0;

  /// Per-component latency decomposition (network / wait / service /
  /// retry penalty) over the same delivered requests. Populated only when
  /// Scenario::observe is set; empty() otherwise.
  obs::LatencyBreakdown breakdown;

  // --- Fault / retry accounting (summed across replications) -----------
  std::uint64_t offered = 0;   ///< client submits (post-warmup)
  std::uint64_t retries = 0;   ///< re-issued attempts
  std::uint64_t timeouts = 0;  ///< requests abandoned after the budget
  double timeout_rate = 0.0;   ///< timeouts / offered
  double availability = 1.0;   ///< 1 - timeout_rate

  // --- State-tier accounting (summed; zero when stateless or cloud) -----
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t state_pulls = 0;      ///< pull RPCs issued (== misses)
  std::uint64_t pulls_abandoned = 0;  ///< pulls lost to the retry budget
  double cache_hit_rate = 0.0;        ///< hits / lookups (0 if no lookups)

  // --- Cost accounting (src/cost/) --------------------------------------
  /// Metered usage summed over ALL replications — including dead ones,
  /// whose synthesized provisioned-but-idle usage is billed even though
  /// they are excluded from every latency statistic and from
  /// `utilization` — priced once through the scenario's CostSpec and
  /// PriceModel. Deterministic: usage is merged in replication order.
  cost::SideCost cost;
};

/// One sweep point: edge and cloud under the identical workload (and,
/// with faults enabled, the identical fault trace — CRN pairing).
struct PointResult {
  Rate rate_per_server = 0.0;  ///< offered req/s per server
  double rho_offered = 0.0;    ///< rate / mu (offered utilization)
  SideStats edge;
  SideStats cloud;
  std::uint64_t edge_redirects = 0;  ///< geo-LB redirects (if enabled)
  std::uint64_t edge_failovers = 0;  ///< crash-failover hops (if faults)
};

/// Runs one replication at the given per-server rate; returns raw latency
/// samples and utilizations. Exposed for tests; most callers use
/// run_point / run_sweep.
struct ReplicationOutput {
  std::vector<double> edge_latencies;
  std::vector<double> cloud_latencies;
  double edge_utilization = 0.0;
  double cloud_utilization = 0.0;
  std::uint64_t edge_redirects = 0;
  std::uint64_t edge_failovers = 0;
  /// Client-side retry/timeout accounting (post-warmup).
  cluster::ClientStats edge_client;
  cluster::ClientStats cloud_client;
  /// Requests black-holed or killed inside each deployment by crashes.
  std::uint64_t edge_dropped = 0;
  std::uint64_t cloud_dropped = 0;
  /// State-tier accounting (all-zero for stateless scenarios and for
  /// sides without a cache tier — the cloud serves state locally).
  state::CacheStats edge_cache;
  state::CacheStats cloud_cache;
  state::PullStats edge_pulls;
  state::PullStats cloud_pulls;
  /// Metered resource usage of each side over the measurement window
  /// (post-warmup): server-seconds busy and provisioned, WAN send counts,
  /// site-occupancy seconds, rented intervals. Dead replications carry
  /// the synthesized provisioned-but-idle usage of the configured fleet
  /// (see dead_replication_usage).
  cost::Usage edge_usage;
  cost::Usage cloud_usage;
  /// Fraction of [0, horizon) each edge site was down in the fault trace.
  std::vector<double> site_downtime;
  /// Per-site mean latency and utilization (for Fig. 10-style breakdowns).
  std::vector<double> site_mean_latency;
  std::vector<double> site_utilization;
  /// Calendar events the replication executed (0 for short-circuited dead
  /// replications). The adaptive engine reports simulated-event budgets
  /// with this.
  std::uint64_t events = 0;
  /// Peak occupancy of each side's in-flight request pool, checked against
  /// replication_reserve_hints().inflight by the invariant tests (a
  /// high-water above the hint means a mid-measurement slab growth).
  std::size_t edge_pool_high_water = 0;
  std::size_t cloud_pool_high_water = 0;
  /// True when the replication was short-circuited without simulating:
  /// its fault trace provably blacked out [0, horizon) on both sides, so
  /// it could not have delivered a single request.
  bool dead = false;

  // --- Observability (populated only when Scenario::observe) ------------
  /// Post-warmup completion records (full per-request decomposition).
  des::RecordColumns edge_records;
  des::RecordColumns cloud_records;
  /// Fixed-cadence gauge series (per-station util/queue, client pending).
  obs::SamplerResult edge_series;
  obs::SamplerResult cloud_series;
};

/// Pre-sizing hints for one replication at one rate, derived from the
/// offered load: how many completions each side's sink will buffer, how
/// many calendar events are pending at once, and how many requests are
/// simultaneously in flight (sizes the deployments' RequestPools). The
/// runner applies them before the first arrival so nothing reallocates
/// mid-measurement; the invariant tests assert the observed high-water
/// marks stay under them.
struct ReserveHints {
  std::size_t completions = 0;     ///< per-side sink capacity
  std::size_t pending_events = 0;  ///< calendar capacity
  std::size_t inflight = 0;        ///< per-side in-flight pool capacity
};
ReserveHints replication_reserve_hints(const Scenario& scenario,
                                       Rate rate_per_server);

ReplicationOutput run_replication(const Scenario& scenario,
                                  Rate rate_per_server, int replication);

namespace detail {
/// The full sequential replication body over a caller-supplied simulation:
/// builds both sides, the mirrored sources, the fault wiring, and the
/// samplers on `sim`, then invokes `run_calendar` (which must drain `sim`)
/// and collects the output. run_replication passes a plain Simulation and
/// Simulation::run; the partitioned runner passes partition 0 of a
/// one-partition PartitionedSimulation and its window loop — the code path
/// that pins P=1 to the sequential hexfloat goldens *by construction*.
ReplicationOutput run_replication_on(const Scenario& scenario,
                                     Rate rate_per_server, int replication,
                                     des::Simulation& sim,
                                     const std::function<void()>& run_calendar);
}  // namespace detail

/// Merges replication outputs (ordered by replication index) into a
/// PointResult — the single deterministic merge path shared by run_point
/// and the adaptive engine. Merging outputs 0..n-1 produced by
/// run_replication yields bit-identical statistics to run_point with
/// scenario.replications = n, regardless of the order the outputs were
/// *executed* in.
PointResult merge_replications(const Scenario& scenario, Rate rate_per_server,
                               const std::vector<ReplicationOutput>& reps);

/// Runs scenario.replications replications at one rate and merges.
PointResult run_point(const Scenario& scenario, Rate rate_per_server);

/// Runs a full rate sweep (the paper's 6..12 req/s axis). Points are
/// distributed over a thread pool; the result order matches `rates`.
/// An exception thrown at any sweep point (e.g. a contract violation for
/// a rate at or above saturation) is captured in its worker, the pool is
/// drained, and the lowest-indexed point's exception is rethrown here —
/// deterministically, regardless of thread scheduling — instead of
/// escaping a worker thread and terminating the process.
std::vector<PointResult> run_sweep(const Scenario& scenario,
                                   const std::vector<Rate>& rates,
                                   int max_threads = 0);

/// The paper's standard sweep axis: 6..12 req/s per server, step 1.
std::vector<Rate> paper_rate_axis();
/// A finer axis for crossover localization: 1..12.5 req/s, step 0.5.
std::vector<Rate> fine_rate_axis();

}  // namespace hce::experiment
