#include "experiment/crossover.hpp"

#include "support/contracts.hpp"
#include "support/math.hpp"

namespace hce::experiment {

double metric_of(const SideStats& s, Metric m) {
  switch (m) {
    case Metric::kMean: return s.mean;
    case Metric::kP50: return s.p50;
    case Metric::kP95: return s.p95;
    case Metric::kP99: return s.p99;
  }
  return s.mean;
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kMean: return "mean";
    case Metric::kP50: return "p50";
    case Metric::kP95: return "p95";
    case Metric::kP99: return "p99";
  }
  return "mean";
}

std::optional<Crossover> find_crossover(const std::vector<PointResult>& sweep,
                                        Metric metric, Rate mu) {
  HCE_EXPECT(mu > 0.0, "find_crossover: mu must be positive");
  if (sweep.size() < 2) return std::nullopt;
  std::vector<double> xs, edge, cloud;
  xs.reserve(sweep.size());
  for (const auto& p : sweep) {
    xs.push_back(p.rate_per_server);
    edge.push_back(metric_of(p.edge, metric));
    cloud.push_back(metric_of(p.cloud, metric));
  }
  const auto x = crossing_point(xs, edge, cloud);
  if (!x) return std::nullopt;
  return Crossover{*x, *x / mu};
}

CrossoverSummary measure_crossovers(const Scenario& scenario,
                                    const std::vector<Rate>& rates,
                                    int max_threads) {
  const auto sweep = run_sweep(scenario, rates, max_threads);
  CrossoverSummary s;
  s.mean = find_crossover(sweep, Metric::kMean, scenario.mu);
  s.p95 = find_crossover(sweep, Metric::kP95, scenario.mu);
  return s;
}

}  // namespace hce::experiment
