// Cloud-side request dispatching.
//
// The paper's analysis idealizes the cloud as a single M/M/k queue; its
// experiments use HAProxy in front of k servers. Those are different
// systems: a central queue holds requests until *any* server frees, while
// a dispatcher commits each request to one server's private queue at
// arrival. Dispatcher quality determines how close a dispatched cluster
// gets to the central-queue ideal (leastconn/JSQ gets close; round-robin
// and random do not at high load). We implement both ends and the policies
// between so the gap is measurable (bench_ablation_dispatch).
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "des/simulation.hpp"
#include "des/station.hpp"
#include "support/rng.hpp"

namespace hce::cluster {

enum class DispatchPolicy {
  kCentralQueue,  ///< one shared FCFS queue, k servers (M/M/k ideal)
  kRoundRobin,    ///< cycle through servers (HAProxy default)
  kRandom,        ///< uniform random server
  kJoinShortestQueue,  ///< fewest in-system (HAProxy leastconn)
  kLeastWork,     ///< least queued service demand (omniscient)
};

std::string to_string(DispatchPolicy p);

/// A cluster of servers behind one of the dispatch policies above.
/// For kCentralQueue this is a single k-server Station; otherwise it is k
/// single-server Stations plus the routing rule.
class Cluster {
 public:
  Cluster(des::Simulation& sim, const std::string& name, int num_servers,
          DispatchPolicy policy, double speed = 1.0);

  void set_completion_handler(des::Station::CompletionHandler handler);

  /// Routes a request at the current simulation time.
  void dispatch(des::Request req, Rng& rng);

  int num_servers() const { return num_servers_; }
  DispatchPolicy policy() const { return policy_; }

  // --- Fault injection --------------------------------------------------
  /// Takes one server *group* (a contiguous block of `group_size` servers,
  /// the cloud-side mirror of one edge site's hardware) down or up. For a
  /// central queue this degrades the station's active-server count; for
  /// dispatched clusters it crashes/recovers the member stations.
  void set_server_group_up(int group, int group_size, bool up);
  /// Number of servers currently serviceable.
  int active_servers() const;
  /// Requests black-holed at down stations plus requests killed by
  /// crashes (queue drops + in-service kills).
  std::uint64_t dropped() const;

  /// Average utilization across servers since last reset.
  double utilization() const;
  /// Total queued requests (all queues).
  std::size_t queue_length() const;
  std::uint64_t completed() const;
  void reset_stats();

  /// Underlying stations (1 for central queue, k otherwise).
  const std::vector<std::unique_ptr<des::Station>>& stations() const {
    return stations_;
  }

 private:
  des::Simulation& sim_;
  int num_servers_;
  DispatchPolicy policy_;
  std::vector<std::unique_ptr<des::Station>> stations_;
  std::size_t rr_next_ = 0;
  std::unordered_set<int> down_groups_;  // idempotence guard for crashes
};

}  // namespace hce::cluster
