#include "cluster/source.hpp"

#include "support/contracts.hpp"

namespace hce::cluster {

namespace {

/// Ring capacity: one refill pass amortizes this many virtual
/// arrival/service (and key-sampler) calls. Small enough that a source's
/// look-ahead stays a few KiB, large enough that the virtual-dispatch
/// cost per event is negligible.
constexpr std::size_t kRingCapacity = 128;

}  // namespace

Source::Source(des::Simulation& sim, workload::ArrivalPtr arrivals,
               workload::ServicePtr service, int site, SubmitFn submit,
               Rng rng)
    : sim_(sim),
      arrivals_(std::move(arrivals)),
      service_(std::move(service)),
      site_(site),
      submit_(std::move(submit)),
      rng_(std::move(rng)) {
  HCE_EXPECT(arrivals_ != nullptr, "source: null arrival process");
  HCE_EXPECT(service_ != nullptr, "source: null service model");
  HCE_EXPECT(submit_ != nullptr, "source: null submit function");
}

void Source::start(Time until) {
  HCE_EXPECT(until > sim_.now(), "source: horizon must be in the future");
  until_ = until;
  prev_time_ = sim_.now();
  exhausted_ = false;
  ring_.clear();
  ring_.reserve(kRingCapacity);
  ring_pos_ = 0;
  schedule_next();
}

// One pass of batched pre-sampling. The loop draws (arrival_i, service_i)
// interleaved on rng_ and key_i on the dedicated key stream — the exact
// per-event order of the pre-batching source, so the stream state after
// any prefix of arrivals is unchanged and golden digests stay
// bit-identical. The final draw that lands at or beyond the horizon
// consumes no service or key draw, also exactly as before.
void Source::refill() {
  ring_.clear();
  ring_pos_ = 0;
  while (!exhausted_ && ring_.size() < kRingCapacity) {
    const Time t = arrivals_->next_arrival_after(prev_time_, rng_);
    if (t >= until_) {
      exhausted_ = true;
      break;
    }
    prev_time_ = t;
    PregenRequest e;
    e.t = t;
    e.demand = service_->sample(rng_);
    if (keys_) e.key = keys_->key(*key_rng_);
    ring_.push_back(e);
  }
}

void Source::schedule_next() {
  if (ring_pos_ >= ring_.size()) {
    if (exhausted_) return;
    refill();
    if (ring_.empty()) return;
  }
  sim_.schedule_at(ring_[ring_pos_].t, [this] {
    const PregenRequest& e = ring_[ring_pos_++];
    des::Request req;
    req.id = next_id_++;
    req.site = site_;
    req.service_demand = e.demand;
    req.key = e.key;
    ++generated_;
    submit_(std::move(req));
    schedule_next();
  });
}

MirroredSource::MirroredSource(des::Simulation& sim,
                               workload::ArrivalPtr arrivals,
                               workload::ServicePtr service, int site,
                               SubmitFn submit_a, SubmitFn submit_b, Rng rng)
    : sim_(sim),
      arrivals_(std::move(arrivals)),
      service_(std::move(service)),
      site_(site),
      submit_a_(std::move(submit_a)),
      submit_b_(std::move(submit_b)),
      rng_(std::move(rng)) {
  HCE_EXPECT(arrivals_ != nullptr, "mirrored source: null arrival process");
  HCE_EXPECT(service_ != nullptr, "mirrored source: null service model");
  HCE_EXPECT(submit_a_ && submit_b_, "mirrored source: null submit");
}

void MirroredSource::start(Time until) {
  HCE_EXPECT(until > sim_.now(),
             "mirrored source: horizon must be in the future");
  until_ = until;
  prev_time_ = sim_.now();
  exhausted_ = false;
  ring_.clear();
  ring_.reserve(kRingCapacity);
  ring_pos_ = 0;
  schedule_next();
}

// See Source::refill — identical draw-order contract. The arrival time,
// service demand, and key are each sampled ONCE per logical request and
// shared by both mirrored copies (CRN pairing extends to the data access
// pattern), exactly as in the per-event path.
void MirroredSource::refill() {
  ring_.clear();
  ring_pos_ = 0;
  while (!exhausted_ && ring_.size() < kRingCapacity) {
    const Time t = arrivals_->next_arrival_after(prev_time_, rng_);
    if (t >= until_) {
      exhausted_ = true;
      break;
    }
    prev_time_ = t;
    PregenRequest e;
    e.t = t;
    e.demand = service_->sample(rng_);
    if (keys_) e.key = keys_->key(*key_rng_);
    ring_.push_back(e);
  }
}

void MirroredSource::schedule_next() {
  if (ring_pos_ >= ring_.size()) {
    if (exhausted_) return;
    refill();
    if (ring_.empty()) return;
  }
  sim_.schedule_at(ring_[ring_pos_].t, [this] {
    const PregenRequest& e = ring_[ring_pos_++];
    des::Request req;
    req.id = next_id_++;
    req.site = site_;
    req.service_demand = e.demand;
    req.key = e.key;
    ++generated_;
    des::Request copy = req;
    submit_a_(std::move(req));
    submit_b_(std::move(copy));
    schedule_next();
  });
}

TraceReplaySource::TraceReplaySource(
    des::Simulation& sim, std::shared_ptr<const workload::Trace> trace,
    SubmitFn submit, Time t_offset)
    : sim_(sim),
      trace_(std::move(trace)),
      submit_(std::move(submit)),
      t_offset_(t_offset) {
  HCE_EXPECT(trace_ != nullptr, "trace replay: null trace");
  HCE_EXPECT(submit_ != nullptr, "trace replay: null submit");
}

void TraceReplaySource::start() {
  index_ = 0;
  schedule_next();
}

void TraceReplaySource::schedule_next() {
  if (index_ >= trace_->size()) return;
  const workload::TraceEvent& e = (*trace_)[index_];
  const Time t = e.timestamp + t_offset_;
  HCE_EXPECT(t >= sim_.now(), "trace replay: trace not sorted");
  sim_.schedule_at(t, [this] {
    const workload::TraceEvent& ev = (*trace_)[index_];
    ++index_;
    des::Request req;
    req.id = index_;
    req.site = ev.site;
    req.service_demand = ev.service_demand;
    if (submit_b_) {
      des::Request copy = req;
      submit_(std::move(req));
      submit_b_(std::move(copy));
    } else {
      submit_(std::move(req));
    }
    schedule_next();
  });
}

}  // namespace hce::cluster
