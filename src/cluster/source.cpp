#include "cluster/source.hpp"

#include "support/contracts.hpp"

namespace hce::cluster {

Source::Source(des::Simulation& sim, workload::ArrivalPtr arrivals,
               workload::ServicePtr service, int site, SubmitFn submit,
               Rng rng)
    : sim_(sim),
      arrivals_(std::move(arrivals)),
      service_(std::move(service)),
      site_(site),
      submit_(std::move(submit)),
      rng_(std::move(rng)) {
  HCE_EXPECT(arrivals_ != nullptr, "source: null arrival process");
  HCE_EXPECT(service_ != nullptr, "source: null service model");
  HCE_EXPECT(submit_ != nullptr, "source: null submit function");
}

void Source::start(Time until) {
  HCE_EXPECT(until > sim_.now(), "source: horizon must be in the future");
  until_ = until;
  next_time_ = sim_.now();
  schedule_next();
}

void Source::schedule_next() {
  next_time_ = arrivals_->next_arrival_after(next_time_, rng_);
  if (next_time_ >= until_) return;
  sim_.schedule_at(next_time_, [this] {
    des::Request req;
    req.id = next_id_++;
    req.site = site_;
    req.service_demand = service_->sample(rng_);
    if (keys_) req.key = keys_->key(*key_rng_);
    ++generated_;
    submit_(std::move(req));
    schedule_next();
  });
}

MirroredSource::MirroredSource(des::Simulation& sim,
                               workload::ArrivalPtr arrivals,
                               workload::ServicePtr service, int site,
                               SubmitFn submit_a, SubmitFn submit_b, Rng rng)
    : sim_(sim),
      arrivals_(std::move(arrivals)),
      service_(std::move(service)),
      site_(site),
      submit_a_(std::move(submit_a)),
      submit_b_(std::move(submit_b)),
      rng_(std::move(rng)) {
  HCE_EXPECT(arrivals_ != nullptr, "mirrored source: null arrival process");
  HCE_EXPECT(service_ != nullptr, "mirrored source: null service model");
  HCE_EXPECT(submit_a_ && submit_b_, "mirrored source: null submit");
}

void MirroredSource::start(Time until) {
  HCE_EXPECT(until > sim_.now(),
             "mirrored source: horizon must be in the future");
  until_ = until;
  schedule_next();
}

void MirroredSource::schedule_next() {
  const Time t = arrivals_->next_arrival_after(
      generated_ == 0 ? sim_.now() : last_time_, rng_);
  if (t >= until_) return;
  last_time_ = t;
  sim_.schedule_at(t, [this] {
    des::Request req;
    req.id = next_id_++;
    req.site = site_;
    req.service_demand = service_->sample(rng_);
    // One draw per logical request: both mirrored copies touch the same
    // key, extending the CRN pairing to the data access pattern.
    if (keys_) req.key = keys_->key(*key_rng_);
    ++generated_;
    des::Request copy = req;
    submit_a_(std::move(req));
    submit_b_(std::move(copy));
    schedule_next();
  });
}

TraceReplaySource::TraceReplaySource(
    des::Simulation& sim, std::shared_ptr<const workload::Trace> trace,
    SubmitFn submit, Time t_offset)
    : sim_(sim),
      trace_(std::move(trace)),
      submit_(std::move(submit)),
      t_offset_(t_offset) {
  HCE_EXPECT(trace_ != nullptr, "trace replay: null trace");
  HCE_EXPECT(submit_ != nullptr, "trace replay: null submit");
}

void TraceReplaySource::start() {
  index_ = 0;
  schedule_next();
}

void TraceReplaySource::schedule_next() {
  if (index_ >= trace_->size()) return;
  const workload::TraceEvent& e = (*trace_)[index_];
  const Time t = e.timestamp + t_offset_;
  HCE_EXPECT(t >= sim_.now(), "trace replay: trace not sorted");
  sim_.schedule_at(t, [this] {
    const workload::TraceEvent& ev = (*trace_)[index_];
    ++index_;
    des::Request req;
    req.id = index_;
    req.site = ev.site;
    req.service_demand = ev.service_demand;
    if (submit_b_) {
      des::Request copy = req;
      submit_(std::move(req));
      submit_b_(std::move(copy));
    } else {
      submit_(std::move(req));
    }
    schedule_next();
  });
}

}  // namespace hce::cluster
