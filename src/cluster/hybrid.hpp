// Hybrid edge-cloud deployment: local edge service with cloud overflow.
//
// The paper's §5.1 mitigation redirects between *edge sites*; the other
// practical escape valve is offloading to the big pool itself: serve
// locally while the site is healthy, forward to the cloud when the local
// queue is long. This bounds the edge queueing delay at the cost of the
// cloud RTT for offloaded requests — a knob between "pure edge" (threshold
// = ∞) and "pure cloud" (threshold = 0), and the natural deployment for
// applications that fear inversion but want edge latency when it is
// actually available.
#pragma once

#include <memory>
#include <vector>

#include "cluster/dispatch.hpp"
#include "cluster/network.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "des/sink.hpp"
#include "des/station.hpp"
#include "support/rng.hpp"

namespace hce::cluster {

struct HybridConfig {
  int num_sites = 5;
  int servers_per_site = 1;
  double edge_speed = 1.0;
  NetworkModel edge_network = NetworkModel::fixed(0.001);

  int cloud_servers = 5;
  NetworkModel cloud_network = NetworkModel::fixed(0.025);
  DispatchPolicy cloud_dispatch = DispatchPolicy::kCentralQueue;

  /// Offload when the local site's queue length is at least this.
  /// 0 = always offload (pure cloud); a huge value = pure edge.
  std::size_t offload_queue_threshold = 2;
};

class HybridDeployment {
 public:
  HybridDeployment(des::Simulation& sim, HybridConfig cfg, Rng rng);

  /// Client in region req.site issues the request now; it is served at
  /// its local edge site, or offloaded to the cloud pool if the local
  /// queue is at or above the threshold at (post-uplink) arrival time.
  void submit(des::Request req);

  des::Sink& sink() { return sink_; }
  const des::Sink& sink() const { return sink_; }
  des::Station& site(int i) { return *sites_.at(static_cast<std::size_t>(i)); }
  Cluster& cloud() { return cloud_; }

  std::uint64_t offloaded() const { return offloaded_; }
  std::uint64_t served_locally() const { return local_; }
  /// Fraction of completed requests served by the cloud pool.
  double offload_fraction() const;
  double edge_utilization() const;
  double cloud_utilization() const { return cloud_.utilization(); }
  void reset_stats();

  const HybridConfig& config() const { return cfg_; }

 private:
  des::Simulation& sim_;
  HybridConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<des::Station>> sites_;
  Cluster cloud_;
  des::Sink sink_;
  /// In-flight request payloads (network legs, offload hops): calendar
  /// handlers capture 4-byte pool handles, not Requests.
  des::RequestPool pool_;
  std::uint64_t offloaded_ = 0;
  std::uint64_t local_ = 0;
};

}  // namespace hce::cluster
