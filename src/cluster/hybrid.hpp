// Hybrid edge-cloud deployment: local edge service with cloud overflow.
//
// The paper's §5.1 mitigation redirects between *edge sites*; the other
// practical escape valve is offloading to the big pool itself: serve
// locally while the site is healthy, forward to the cloud when the local
// queue is long. This bounds the edge queueing delay at the cost of the
// cloud RTT for offloaded requests — a knob between "pure edge" (threshold
// = ∞) and "pure cloud" (threshold = 0), and the natural deployment for
// applications that fear inversion but want edge latency when it is
// actually available.
//
// Implements the abstract cluster::Deployment interface on top of the
// shared RetryClient: the hybrid's routing policy re-enters the *local*
// site on retry (its arrival logic offloads around crashed sites and long
// queues), so a faulted hybrid satisfies the same
// offered == delivered + timeouts identity as the pure deployments.
#pragma once

#include <memory>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/deployment_base.hpp"
#include "cluster/dispatch.hpp"
#include "cluster/network.hpp"
#include "cluster/state_tier.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "des/sink.hpp"
#include "des/station.hpp"
#include "faults/fault.hpp"
#include "support/rng.hpp"

namespace hce::cluster {

struct HybridConfig {
  int num_sites = 5;
  int servers_per_site = 1;
  double edge_speed = 1.0;
  NetworkModel edge_network = NetworkModel::fixed(0.001);

  int cloud_servers = 5;
  NetworkModel cloud_network = NetworkModel::fixed(0.025);
  DispatchPolicy cloud_dispatch = DispatchPolicy::kCentralQueue;

  /// Offload when the local site's queue length is at least this.
  /// 0 = always offload (pure cloud); a huge value = pure edge.
  std::size_t offload_queue_threshold = 2;

  // --- Fault handling ---------------------------------------------------
  /// Client-side timeout/retry/backoff. Retries re-enter the local site;
  /// when `retry.failover` is set, arrivals at a *crashed* site offload to
  /// the cloud pool regardless of the queue threshold (health-checked
  /// offload — the hybrid's escape valve doubles as its failover path).
  RetryPolicy retry;
  /// Per-site access-link degradation on the client<->site leg (empty =
  /// all healthy; otherwise one entry per site, null entries allowed).
  std::vector<std::shared_ptr<const faults::LinkSchedule>> site_link_faults;
  /// WAN degradation on the site->cloud forward leg and the cloud->client
  /// response leg (null = healthy).
  std::shared_ptr<const faults::LinkSchedule> cloud_link_faults;

  // --- Stateful requests (src/state/) -----------------------------------
  /// Cache-tier spec for *locally served* requests: a local miss pulls
  /// state from the cloud store over the hybrid's own cloud path
  /// (cloud_network + cloud_link_faults). Offloaded requests run next to
  /// the store and never stall on data — offloading dodges the pull the
  /// same way it dodges the local queue.
  state::StateSpec state;
  /// Pull timeout/retry policy; keep enabled when cloud_link_faults is
  /// set (see StateTierConfig).
  RetryPolicy state_retry;
};

class HybridDeployment final : public Deployment {
 public:
  HybridDeployment(des::Simulation& sim, HybridConfig cfg, Rng rng);

  /// Client in region req.site issues the request now; it is served at
  /// its local edge site, or offloaded to the cloud pool if the local
  /// queue is at or above the threshold at (post-uplink) arrival time —
  /// or if the local site is crashed and failover is enabled.
  void submit(des::Request req) override;

  des::Sink& sink() override { return sink_; }
  const des::Sink& sink() const override { return sink_; }
  des::Station& site(int i) { return *sites_.at(static_cast<std::size_t>(i)); }
  Cluster& cloud() { return cloud_; }

  std::uint64_t offloaded() const override { return offloaded_; }
  std::uint64_t served_locally() const { return local_; }
  /// Fraction of completed requests served by the cloud pool.
  double offload_fraction() const;
  double edge_utilization() const;
  double cloud_utilization() const { return cloud_.utilization(); }
  /// Busy-server fraction across the whole deployment (edge + cloud pool).
  double utilization() const override;
  std::uint64_t completed() const override;
  /// Requests black-holed or killed at crashed edge sites or inside the
  /// cloud pool.
  std::uint64_t dropped() const override;
  const ClientStats& client_stats() const override { return client_.stats(); }
  int num_sites() const override { return cfg_.num_sites; }
  /// Crashes/recovers one edge site (the cloud pool is not faultable
  /// through the hybrid; it is the escape valve).
  void set_site_up(int site, bool up) override;
  double site_utilization(int i) const override {
    return sites_.at(static_cast<std::size_t>(i))->utilization();
  }
  void reset_stats() override;
  /// Per-site + cloud-pool util/queue probes plus `hybrid/client_pending`
  /// (and, with a state tier, cache occupancy + pulls-in-flight gauges).
  void instrument(obs::Sampler& sampler) const override;

  state::CacheStats cache_stats() const override {
    return tier_ ? tier_->cache_stats() : state::CacheStats{};
  }
  state::PullStats pull_stats() const override {
    return tier_ ? tier_->pull_stats() : state::PullStats{};
  }
  /// The state tier, or null when the deployment is stateless.
  const StateTier* state_tier() const { return tier_.get(); }
  /// Edge + cloud-pool server-time, site rental, and the WAN crossings
  /// of the offload path (forward + cloud response) and state pulls.
  cost::Usage cost_usage() const override;

  const HybridConfig& config() const { return cfg_; }

 private:
  // Retry-client hooks, bound statically (no virtual dispatch per event).
  friend class BasicRetryClient<HybridDeployment>;
  void client_send(des::Request req, int target);
  int client_retry_target(const des::Request& req, int prev_target);

  void arrive_at_site(des::Request req, int site_index);
  void offload_to_cloud(des::Request req);
  const faults::LinkSchedule* link_schedule(int site) const;

  des::Simulation& sim_;
  HybridConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<des::Station>> sites_;
  Cluster cloud_;
  des::Sink sink_;
  /// In-flight request payloads (network legs, offload hops): calendar
  /// handlers capture 4-byte pool handles, not Requests.
  des::RequestPool pool_;
  std::uint64_t offloaded_ = 0;
  std::uint64_t local_ = 0;
  /// WAN crossings of the offload path since the last reset, stamped at
  /// send issue (before any link-partition drop).
  std::uint64_t wan_request_sends_ = 0;
  std::uint64_t wan_response_sends_ = 0;
  Time stats_epoch_ = 0.0;
  /// Cache tier in front of the local sites (null = stateless).
  std::unique_ptr<StateTier> tier_;
  BasicRetryClient<HybridDeployment> client_;
};

}  // namespace hce::cluster
