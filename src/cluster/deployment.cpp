#include "cluster/deployment.hpp"

#include <limits>
#include <utility>

#include "support/contracts.hpp"

namespace hce::cluster {

// ---------------------------------------------------------------------------
// Cloud
// ---------------------------------------------------------------------------

CloudDeployment::CloudDeployment(des::Simulation& sim, CloudConfig cfg,
                                 Rng rng)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      cluster_(sim, "cloud", cfg_.num_servers, cfg_.dispatch, cfg_.speed) {
  cluster_.set_completion_handler([this](const des::Request& done) {
    // Downlink back to the client, then deliver. A partitioned WAN path
    // swallows the response; the client's timeout recovers the request.
    des::Request copy = done;
    Time extra = 0.0;
    if (cfg_.link_faults) {
      if (cfg_.link_faults->partitioned(sim_.now())) {
        ++client_.link_drops;
        return;
      }
      extra = cfg_.link_faults->extra_one_way(sim_.now());
    }
    const Time downlink = cfg_.network.one_way(rng_) + extra;
    const auto h = pool_.put(std::move(copy));
    sim_.schedule_in(downlink, [this, h] {
      des::Request r = pool_.take(h);
      r.t_completed = sim_.now();
      deliver(std::move(r));
    });
  });
}

void CloudDeployment::submit(des::Request req) {
  req.t_created = sim_.now();
  ++client_.offered;
  if (cfg_.retry.enabled) {
    req.client_token = next_token_++;
    start_attempt(std::move(req), 1, epoch_);
  } else {
    send_attempt(std::move(req));
  }
}

void CloudDeployment::start_attempt(des::Request req, int attempt,
                                    std::uint64_t epoch) {
  const std::uint64_t token = req.client_token;
  const auto timeout_event = sim_.schedule_in(
      cfg_.retry.timeout, [this, token] { on_timeout(token); });
  pending_[token] = PendingRequest{timeout_event, attempt, epoch, req};
  send_attempt(std::move(req));
}

void CloudDeployment::send_attempt(des::Request req) {
  Time extra = 0.0;
  if (cfg_.link_faults) {
    if (cfg_.link_faults->partitioned(sim_.now())) {
      ++client_.link_drops;  // lost in transit; the timeout recovers it
      return;
    }
    extra = cfg_.link_faults->extra_one_way(sim_.now());
  }
  const Time uplink =
      cfg_.network.one_way(rng_) + extra + cfg_.dispatch_overhead;
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, h] {
    cluster_.dispatch(pool_.take(h), rng_);
  });
}

void CloudDeployment::on_timeout(std::uint64_t token) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return;
  PendingRequest p = std::move(it->second);
  pending_.erase(it);
  // Requests offered before a stats reset keep retrying (the client does
  // not know about measurement epochs) but touch no counter.
  const bool counted = p.epoch == epoch_;
  if (p.attempt >= 1 + cfg_.retry.max_retries) {
    if (counted) ++client_.timeouts;  // budget exhausted: client gives up
    return;
  }
  if (counted) ++client_.retries;
  const Time backoff = cfg_.retry.backoff_before(p.attempt);
  const auto h = pool_.put(std::move(p.req));
  sim_.schedule_in(backoff,
                   [this, h, attempt = p.attempt, epoch = p.epoch] {
                     // The cloud has a single dispatcher: retries go back
                     // to it.
                     start_attempt(pool_.take(h), attempt + 1, epoch);
                   });
}

void CloudDeployment::deliver(des::Request req) {
  bool counted = true;
  if (cfg_.retry.enabled) {
    const auto it = pending_.find(req.client_token);
    if (it == pending_.end()) {
      // The client already timed this attempt out (and either retried or
      // gave up); the late response is a duplicate.
      ++client_.duplicates;
      return;
    }
    counted = it->second.epoch == epoch_;
    sim_.cancel(it->second.timeout_event);
    pending_.erase(it);
  }
  if (counted) ++client_.delivered;
  sink_.record(req);
}

void CloudDeployment::reset_stats() {
  cluster_.reset_stats();
  client_ = ClientStats{};
  ++epoch_;
}

// ---------------------------------------------------------------------------
// Edge
// ---------------------------------------------------------------------------

EdgeDeployment::EdgeDeployment(des::Simulation& sim, EdgeConfig cfg, Rng rng)
    : sim_(sim), cfg_(std::move(cfg)), rng_(std::move(rng)) {
  HCE_EXPECT(cfg_.num_sites >= 1, "edge deployment needs >= 1 site");
  HCE_EXPECT(cfg_.servers_per_site >= 1,
             "edge deployment needs >= 1 server per site");
  HCE_EXPECT(cfg_.site_link_faults.empty() ||
                 static_cast<int>(cfg_.site_link_faults.size()) ==
                     cfg_.num_sites,
             "site_link_faults must be empty or one entry per site");
  sites_.reserve(static_cast<std::size_t>(cfg_.num_sites));
  for (int s = 0; s < cfg_.num_sites; ++s) {
    sites_.push_back(std::make_unique<des::Station>(
        sim, "edge/" + std::to_string(s), cfg_.servers_per_site, cfg_.speed,
        s));
    sites_.back()->set_completion_handler([this](const des::Request& done) {
      des::Request copy = done;
      Time extra = 0.0;
      const faults::LinkSchedule* ls = link_schedule(done.station_id);
      if (ls != nullptr) {
        if (ls->partitioned(sim_.now())) {
          ++client_.link_drops;  // response lost; client timeout recovers
          return;
        }
        extra = ls->extra_one_way(sim_.now());
      }
      const Time downlink = cfg_.network.one_way(rng_) + extra;
      const auto h = pool_.put(std::move(copy));
      sim_.schedule_in(downlink, [this, h] {
        des::Request r = pool_.take(h);
        r.t_completed = sim_.now();
        deliver(std::move(r));
      });
    });
  }
}

const faults::LinkSchedule* EdgeDeployment::link_schedule(int site) const {
  if (cfg_.site_link_faults.empty() || site < 0 ||
      site >= static_cast<int>(cfg_.site_link_faults.size())) {
    return nullptr;
  }
  return cfg_.site_link_faults[static_cast<std::size_t>(site)].get();
}

int EdgeDeployment::pick_redirect_target(int from_site) const {
  // Least in-system among the other *up* sites (redirecting into a crashed
  // site would black-hole the request behind an attractive queue of zero).
  int best = -1;
  std::size_t best_n = std::numeric_limits<std::size_t>::max();
  for (int s = 0; s < cfg_.num_sites; ++s) {
    if (s == from_site) continue;
    const auto& st = *sites_[static_cast<std::size_t>(s)];
    if (!st.is_up()) continue;
    const std::size_t n = st.in_system();
    if (n < best_n) {
      best_n = n;
      best = s;
    }
  }
  return best;
}

int EdgeDeployment::next_up_site(int from) const {
  for (int d = 1; d < cfg_.num_sites; ++d) {
    const int s = (from + d) % cfg_.num_sites;
    if (sites_[static_cast<std::size_t>(s)]->is_up()) return s;
  }
  return -1;
}

void EdgeDeployment::arrive_at_site(des::Request req, int site_index) {
  auto& station = *sites_[static_cast<std::size_t>(site_index)];
  if (!station.is_up() && cfg_.retry.failover) {
    // Dispatcher health checks: reroute around the crashed site to the
    // next-nearest up one, paying one inter-site hop. If every site is
    // down the request black-holes at the local station (counted in
    // dropped()) and the client timeout takes over.
    const int target = next_up_site(site_index);
    if (target >= 0) {
      ++failover_count_;
      const Time hop = cfg_.inter_site_rtt / 2.0;
      const auto h = pool_.put(std::move(req));
      sim_.schedule_in(hop, [this, target, h] {
        arrive_at_site(pool_.take(h), target);
      });
      return;
    }
  }
  if (cfg_.geo_lb && req.redirects < cfg_.max_redirects && station.is_up() &&
      station.queue_length() >= cfg_.geo_lb_queue_threshold) {
    const int target = pick_redirect_target(site_index);
    if (target >= 0 &&
        sites_[static_cast<std::size_t>(target)]->in_system() + 1 <
            station.in_system()) {
      ++req.redirects;
      ++redirect_count_;
      const Time hop = cfg_.inter_site_rtt / 2.0;
      const auto h = pool_.put(std::move(req));
      sim_.schedule_in(hop, [this, target, h] {
        arrive_at_site(pool_.take(h), target);
      });
      return;
    }
  }
  station.arrive(std::move(req));
}

void EdgeDeployment::submit(des::Request req) {
  HCE_EXPECT(req.site >= 0 && req.site < cfg_.num_sites,
             "edge submit: request site out of range");
  req.t_created = sim_.now();
  ++client_.offered;
  const int target = req.site;
  if (cfg_.retry.enabled) {
    req.client_token = next_token_++;
    start_attempt(std::move(req), 1, target, epoch_);
  } else {
    send_attempt(std::move(req), target);
  }
}

void EdgeDeployment::start_attempt(des::Request req, int attempt, int target,
                                   std::uint64_t epoch) {
  const std::uint64_t token = req.client_token;
  const auto timeout_event = sim_.schedule_in(
      cfg_.retry.timeout, [this, token] { on_timeout(token); });
  pending_[token] = PendingRequest{timeout_event, attempt, target, epoch, req};
  send_attempt(std::move(req), target);
}

void EdgeDeployment::send_attempt(des::Request req, int target) {
  Time extra = 0.0;
  const faults::LinkSchedule* ls = link_schedule(target);
  if (ls != nullptr) {
    if (ls->partitioned(sim_.now())) {
      ++client_.link_drops;  // lost in transit; the timeout recovers it
      return;
    }
    extra = ls->extra_one_way(sim_.now());
  }
  const Time uplink = cfg_.network.one_way(rng_) + extra;
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, target, h] {
    arrive_at_site(pool_.take(h), target);
  });
}

void EdgeDeployment::on_timeout(std::uint64_t token) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return;
  PendingRequest p = std::move(it->second);
  pending_.erase(it);
  // Requests offered before a stats reset keep retrying (the client does
  // not know about measurement epochs) but touch no counter.
  const bool counted = p.epoch == epoch_;
  if (p.attempt >= 1 + cfg_.retry.max_retries) {
    if (counted) ++client_.timeouts;  // budget exhausted: client gives up
    return;
  }
  if (counted) ++client_.retries;
  const Time backoff = cfg_.retry.backoff_before(p.attempt);
  const auto h = pool_.put(std::move(p.req));
  sim_.schedule_in(
      backoff, [this, h, attempt = p.attempt, prev_target = p.target,
                epoch = p.epoch] {
        // Pick the failover target at re-issue time (sites may have
        // recovered or crashed during the backoff). Ring order from the
        // last target — also a hedge when the timeout was congestion, not
        // a crash.
        des::Request req = pool_.take(h);
        int target = req.site;
        if (cfg_.retry.failover) {
          const int next = next_up_site(prev_target);
          target = next >= 0 ? next : prev_target;
        }
        start_attempt(std::move(req), attempt + 1, target, epoch);
      });
}

void EdgeDeployment::deliver(des::Request req) {
  bool counted = true;
  if (cfg_.retry.enabled) {
    const auto it = pending_.find(req.client_token);
    if (it == pending_.end()) {
      ++client_.duplicates;  // stale response of a retried attempt
      return;
    }
    counted = it->second.epoch == epoch_;
    sim_.cancel(it->second.timeout_event);
    pending_.erase(it);
  }
  if (counted) ++client_.delivered;
  sink_.record(req);
}

double EdgeDeployment::utilization() const {
  double sum = 0.0;
  for (const auto& s : sites_) sum += s->utilization();
  return sum / static_cast<double>(sites_.size());
}

std::uint64_t EdgeDeployment::completed() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s->completed();
  return n;
}

std::uint64_t EdgeDeployment::dropped() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s->dropped_arrivals() + s->killed();
  return n;
}

void EdgeDeployment::reset_stats() {
  for (auto& s : sites_) s->reset_stats();
  redirect_count_ = 0;
  failover_count_ = 0;
  client_ = ClientStats{};
  ++epoch_;
}

}  // namespace hce::cluster
