#include "cluster/deployment.hpp"

#include <limits>
#include <utility>

#include "obs/sampler.hpp"
#include "support/contracts.hpp"

namespace hce::cluster {

// ---------------------------------------------------------------------------
// Cloud
// ---------------------------------------------------------------------------

CloudDeployment::CloudDeployment(des::Simulation& sim, CloudConfig cfg,
                                 Rng rng)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      cluster_(sim, "cloud", cfg_.num_servers, cfg_.dispatch, cfg_.speed),
      client_(sim, cfg_.retry, *this) {
  HCE_EXPECT(cfg_.fault_group_size >= 1,
             "cloud fault_group_size must be >= 1");
  cluster_.set_completion_handler([this](const des::Request& done) {
    // Downlink back to the client, then deliver. A partitioned WAN path
    // swallows the response; the client's timeout recovers the request.
    des::Request copy = done;
    Time extra = 0.0;
    ++wan_response_sends_;  // the server transmits even if the WAN drops it
    if (cfg_.link_faults) {
      if (cfg_.link_faults->partitioned(sim_.now())) {
        client_.count_link_drop();
        return;
      }
      extra = cfg_.link_faults->extra_one_way(sim_.now());
    }
    const Time downlink = cfg_.network.one_way(rng_) + extra;
    const auto h = pool_.put(std::move(copy));
    sim_.schedule_in(downlink, [this, h] {
      des::Request r = pool_.take(h);
      r.t_completed = sim_.now();
      if (client_.on_response(r)) sink_.record(r);
    });
  });
}

void CloudDeployment::submit(des::Request req) {
  // The cloud has a single dispatcher; every attempt targets it.
  client_.submit(std::move(req), 0);
}

void CloudDeployment::client_send(des::Request req, int /*target*/) {
  Time extra = 0.0;
  ++wan_request_sends_;  // one per attempt: retries are billed like firsts
  if (cfg_.link_faults) {
    if (cfg_.link_faults->partitioned(sim_.now())) {
      client_.count_link_drop();  // lost in transit; the timeout recovers it
      return;
    }
    extra = cfg_.link_faults->extra_one_way(sim_.now());
  }
  const Time uplink =
      cfg_.network.one_way(rng_) + extra + cfg_.dispatch_overhead;
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, h] {
    cluster_.dispatch(pool_.take(h), rng_);
  });
}

int CloudDeployment::client_retry_target(const des::Request& /*req*/,
                                         int prev_target) {
  return prev_target;  // single dispatcher: retries go back to it
}

int CloudDeployment::num_sites() const {
  const int groups = cfg_.num_servers / cfg_.fault_group_size;
  return groups >= 1 ? groups : 1;
}

void CloudDeployment::set_site_up(int site, bool up) {
  cluster_.set_server_group_up(site, cfg_.fault_group_size, up);
}

void CloudDeployment::reset_stats() {
  cluster_.reset_stats();
  client_.reset_stats();
  wan_request_sends_ = 0;
  wan_response_sends_ = 0;
  stats_epoch_ = sim_.now();
}

cost::Usage CloudDeployment::cost_usage() const {
  cost::Usage u;
  u.elapsed_seconds = sim_.now() - stats_epoch_;
  // Provisioned capacity accrues for the configured fleet through idle
  // time and fault downtime alike — crashed hardware still costs money.
  u.cloud.provisioned_seconds =
      static_cast<double>(cfg_.num_servers) * u.elapsed_seconds;
  for (const auto& st : cluster_.stations()) {
    u.cloud.busy_seconds += st->busy_integral();
  }
  u.wan.request_sends = wan_request_sends_;
  u.wan.response_sends = wan_response_sends_;
  return u;
}

void CloudDeployment::instrument(obs::Sampler& sampler) const {
  for (const auto& st : cluster_.stations()) {
    sampler.add_station_probes(*st);
  }
  sampler.add_probe("cloud/client_pending", [this] {
    return static_cast<double>(client_.pending_in_flight());
  });
}

// ---------------------------------------------------------------------------
// Edge
// ---------------------------------------------------------------------------

EdgeDeployment::EdgeDeployment(des::Simulation& sim, EdgeConfig cfg, Rng rng)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      client_(sim, cfg_.retry, *this) {
  HCE_EXPECT(cfg_.num_sites >= 1, "edge deployment needs >= 1 site");
  HCE_EXPECT(cfg_.servers_per_site >= 1,
             "edge deployment needs >= 1 server per site");
  HCE_EXPECT(cfg_.site_link_faults.empty() ||
                 static_cast<int>(cfg_.site_link_faults.size()) ==
                     cfg_.num_sites,
             "site_link_faults must be empty or one entry per site");
  sites_.reserve(static_cast<std::size_t>(cfg_.num_sites));
  for (int s = 0; s < cfg_.num_sites; ++s) {
    sites_.push_back(std::make_unique<des::Station>(
        sim, "edge/" + std::to_string(s), cfg_.servers_per_site, cfg_.speed,
        s));
    sites_.back()->set_completion_handler([this](const des::Request& done) {
      des::Request copy = done;
      Time extra = 0.0;
      const faults::LinkSchedule* ls = link_schedule(done.station_id);
      if (ls != nullptr) {
        if (ls->partitioned(sim_.now())) {
          client_.count_link_drop();  // response lost; timeout recovers
          return;
        }
        extra = ls->extra_one_way(sim_.now());
      }
      const Time downlink = cfg_.network.one_way(rng_) + extra;
      const auto h = pool_.put(std::move(copy));
      sim_.schedule_in(downlink, [this, h] {
        des::Request r = pool_.take(h);
        r.t_completed = sim_.now();
        if (client_.on_response(r)) sink_.record(r);
      });
    });
  }
  if (cfg_.state.enabled) {
    StateTierConfig tc;
    tc.spec = cfg_.state;
    tc.pull_network = cfg_.state_network;
    tc.pull_retry = cfg_.state_retry;
    tc.pull_link_faults = cfg_.state_link_faults;
    tc.num_sites = cfg_.num_sites;
    // Pull jitter draws come from a derived substream, so enabling the
    // tier cannot perturb the uplink/downlink sampling order above.
    tier_ = std::make_unique<StateTier>(
        sim, std::move(tc), rng_.stream("state-pull"),
        [this](des::Request r, int site) {
          sites_[static_cast<std::size_t>(site)]->arrive(std::move(r));
        });
  }
}

const faults::LinkSchedule* EdgeDeployment::link_schedule(int site) const {
  if (cfg_.site_link_faults.empty() || site < 0 ||
      site >= static_cast<int>(cfg_.site_link_faults.size())) {
    return nullptr;
  }
  return cfg_.site_link_faults[static_cast<std::size_t>(site)].get();
}

int EdgeDeployment::pick_redirect_target(int from_site) const {
  // Least in-system among the other *up* sites (redirecting into a crashed
  // site would black-hole the request behind an attractive queue of zero).
  int best = -1;
  std::size_t best_n = std::numeric_limits<std::size_t>::max();
  for (int s = 0; s < cfg_.num_sites; ++s) {
    if (s == from_site) continue;
    const auto& st = *sites_[static_cast<std::size_t>(s)];
    if (!st.is_up()) continue;
    const std::size_t n = st.in_system();
    if (n < best_n) {
      best_n = n;
      best = s;
    }
  }
  return best;
}

int EdgeDeployment::next_up_site(int from) const {
  for (int d = 1; d < cfg_.num_sites; ++d) {
    const int s = (from + d) % cfg_.num_sites;
    if (sites_[static_cast<std::size_t>(s)]->is_up()) return s;
  }
  return -1;
}

void EdgeDeployment::arrive_at_site(des::Request req, int site_index) {
  auto& station = *sites_[static_cast<std::size_t>(site_index)];
  if (!station.is_up() && cfg_.retry.failover) {
    // Dispatcher health checks: reroute around the crashed site to the
    // next-nearest up one, paying one inter-site hop. If every site is
    // down the request black-holes at the local station (counted in
    // dropped()) and the client timeout takes over.
    const int target = next_up_site(site_index);
    if (target >= 0) {
      ++failover_count_;
      const Time hop = cfg_.inter_site_rtt / 2.0;
      const auto h = pool_.put(std::move(req));
      sim_.schedule_in(hop, [this, target, h] {
        arrive_at_site(pool_.take(h), target);
      });
      return;
    }
  }
  if (cfg_.geo_lb && req.redirects < cfg_.max_redirects && station.is_up() &&
      station.queue_length() >= cfg_.geo_lb_queue_threshold) {
    const int target = pick_redirect_target(site_index);
    if (target >= 0 &&
        sites_[static_cast<std::size_t>(target)]->in_system() + 1 <
            station.in_system()) {
      ++req.redirects;
      ++redirect_count_;
      const Time hop = cfg_.inter_site_rtt / 2.0;
      const auto h = pool_.put(std::move(req));
      sim_.schedule_in(hop, [this, target, h] {
        arrive_at_site(pool_.take(h), target);
      });
      return;
    }
  }
  if (tier_ != nullptr) {
    // Cache consultation happens at the final serving site (after any
    // failover/redirect hop): hits enter the queue now, misses park here
    // until their pull lands.
    tier_->access(std::move(req), site_index);
    return;
  }
  station.arrive(std::move(req));
}

void EdgeDeployment::submit(des::Request req) {
  HCE_EXPECT(req.site >= 0 && req.site < cfg_.num_sites,
             "edge submit: request site out of range");
  const int target = req.site;  // requests are pinned to their home site
  client_.submit(std::move(req), target);
}

void EdgeDeployment::client_send(des::Request req, int target) {
  Time extra = 0.0;
  const faults::LinkSchedule* ls = link_schedule(target);
  if (ls != nullptr) {
    if (ls->partitioned(sim_.now())) {
      client_.count_link_drop();  // lost in transit; the timeout recovers it
      return;
    }
    extra = ls->extra_one_way(sim_.now());
  }
  const Time uplink = cfg_.network.one_way(rng_) + extra;
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, target, h] {
    arrive_at_site(pool_.take(h), target);
  });
}

int EdgeDeployment::client_retry_target(const des::Request& req,
                                        int prev_target) {
  // Ring failover from the last target — sites may have recovered or
  // crashed during the backoff, and the ring hop is also a hedge when the
  // timeout was congestion rather than a crash. Without failover, retries
  // go back to the request's home site.
  int target = req.site;
  if (cfg_.retry.failover) {
    const int next = next_up_site(prev_target);
    target = next >= 0 ? next : prev_target;
  }
  return target;
}

void EdgeDeployment::set_site_up(int site, bool up) {
  sites_.at(static_cast<std::size_t>(site))->set_up(up);
}

double EdgeDeployment::utilization() const {
  double sum = 0.0;
  for (const auto& s : sites_) sum += s->utilization();
  return sum / static_cast<double>(sites_.size());
}

std::uint64_t EdgeDeployment::completed() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s->completed();
  return n;
}

std::uint64_t EdgeDeployment::dropped() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s->dropped_arrivals() + s->killed();
  // Requests whose state pull was abandoned are black-holed in the tier.
  if (tier_ != nullptr) n += tier_->pull_stats().abandoned;
  return n;
}

void EdgeDeployment::reset_stats() {
  for (auto& s : sites_) s->reset_stats();
  redirect_count_ = 0;
  failover_count_ = 0;
  stats_epoch_ = sim_.now();
  if (tier_ != nullptr) tier_->reset_stats();
  client_.reset_stats();
}

cost::Usage EdgeDeployment::cost_usage() const {
  cost::Usage u;
  u.elapsed_seconds = sim_.now() - stats_epoch_;
  // Static fleet: every configured server is provisioned for the whole
  // window (crashes do not stop the rent), and every site is rented.
  u.edge.provisioned_seconds =
      static_cast<double>(cfg_.num_sites) *
      static_cast<double>(cfg_.servers_per_site) * u.elapsed_seconds;
  for (const auto& s : sites_) u.edge.busy_seconds += s->busy_integral();
  u.edge_site_seconds =
      static_cast<double>(cfg_.num_sites) * u.elapsed_seconds;
  if (tier_ != nullptr) {
    u.wan.pull_request_sends = tier_->pull_request_sends();
    u.wan.pull_response_sends = tier_->pull_response_sends();
  }
  return u;
}

void EdgeDeployment::instrument(obs::Sampler& sampler) const {
  for (const auto& s : sites_) sampler.add_station_probes(*s);
  sampler.add_probe("edge/client_pending", [this] {
    return static_cast<double>(client_.pending_in_flight());
  });
  if (tier_ != nullptr) tier_->instrument(sampler, "edge");
}

}  // namespace hce::cluster
