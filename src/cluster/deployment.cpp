#include "cluster/deployment.hpp"

#include <limits>
#include <utility>

#include "support/contracts.hpp"

namespace hce::cluster {

CloudDeployment::CloudDeployment(des::Simulation& sim, CloudConfig cfg,
                                 Rng rng)
    : sim_(sim),
      cfg_(cfg),
      rng_(std::move(rng)),
      cluster_(sim, "cloud", cfg.num_servers, cfg.dispatch, cfg.speed) {
  cluster_.set_completion_handler([this](const des::Request& done) {
    // Downlink back to the client, then record.
    des::Request copy = done;
    const Time downlink = cfg_.network.one_way(rng_);
    sim_.schedule_in(downlink, [this, copy]() mutable {
      copy.t_completed = sim_.now();
      sink_.record(copy);
    });
  });
}

void CloudDeployment::submit(des::Request req) {
  req.t_created = sim_.now();
  const Time uplink = cfg_.network.one_way(rng_) + cfg_.dispatch_overhead;
  sim_.schedule_in(uplink, [this, r = std::move(req)]() mutable {
    cluster_.dispatch(std::move(r), rng_);
  });
}

EdgeDeployment::EdgeDeployment(des::Simulation& sim, EdgeConfig cfg, Rng rng)
    : sim_(sim), cfg_(cfg), rng_(std::move(rng)) {
  HCE_EXPECT(cfg.num_sites >= 1, "edge deployment needs >= 1 site");
  HCE_EXPECT(cfg.servers_per_site >= 1,
             "edge deployment needs >= 1 server per site");
  sites_.reserve(static_cast<std::size_t>(cfg.num_sites));
  for (int s = 0; s < cfg.num_sites; ++s) {
    sites_.push_back(std::make_unique<des::Station>(
        sim, "edge/" + std::to_string(s), cfg.servers_per_site, cfg.speed,
        s));
    sites_.back()->set_completion_handler([this](const des::Request& done) {
      des::Request copy = done;
      const Time downlink = cfg_.network.one_way(rng_);
      sim_.schedule_in(downlink, [this, copy]() mutable {
        copy.t_completed = sim_.now();
        sink_.record(copy);
      });
    });
  }
}

int EdgeDeployment::pick_redirect_target(int from_site) const {
  // Least in-system among the other sites.
  int best = -1;
  std::size_t best_n = std::numeric_limits<std::size_t>::max();
  for (int s = 0; s < cfg_.num_sites; ++s) {
    if (s == from_site) continue;
    const std::size_t n =
        sites_[static_cast<std::size_t>(s)]->in_system();
    if (n < best_n) {
      best_n = n;
      best = s;
    }
  }
  return best;
}

void EdgeDeployment::arrive_at_site(des::Request req, int site_index) {
  auto& station = *sites_[static_cast<std::size_t>(site_index)];
  if (cfg_.geo_lb && req.redirects < cfg_.max_redirects &&
      station.queue_length() >= cfg_.geo_lb_queue_threshold) {
    const int target = pick_redirect_target(site_index);
    if (target >= 0 &&
        sites_[static_cast<std::size_t>(target)]->in_system() + 1 <
            station.in_system()) {
      ++req.redirects;
      ++redirect_count_;
      const Time hop = cfg_.inter_site_rtt / 2.0;
      sim_.schedule_in(hop, [this, target, r = std::move(req)]() mutable {
        arrive_at_site(std::move(r), target);
      });
      return;
    }
  }
  station.arrive(std::move(req));
}

void EdgeDeployment::submit(des::Request req) {
  HCE_EXPECT(req.site >= 0 && req.site < cfg_.num_sites,
             "edge submit: request site out of range");
  req.t_created = sim_.now();
  const int target = req.site;
  const Time uplink = cfg_.network.one_way(rng_);
  sim_.schedule_in(uplink, [this, target, r = std::move(req)]() mutable {
    arrive_at_site(std::move(r), target);
  });
}

double EdgeDeployment::utilization() const {
  double sum = 0.0;
  for (const auto& s : sites_) sum += s->utilization();
  return sum / static_cast<double>(sites_.size());
}

std::uint64_t EdgeDeployment::completed() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s->completed();
  return n;
}

void EdgeDeployment::reset_stats() {
  for (auto& s : sites_) s->reset_stats();
  redirect_count_ = 0;
}

}  // namespace hce::cluster
