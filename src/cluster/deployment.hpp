// Edge and cloud deployment topologies (the paper's Figure 1).
//
// Both deployments accept client-side request submissions and record
// completed requests (with full end-to-end timing) into a Sink. The only
// structural difference between them is the paper's point:
//
//   CloudDeployment — one site, K servers, one network RTT (n_cloud),
//   requests from all regions funneled through one dispatcher.
//
//   EdgeDeployment — k sites of m servers each, a short network RTT
//   (n_edge), requests pinned to their originating site (optionally with
//   geographic load balancing, §5.1's "queue jockeying" mitigation).
//
// Both implement the abstract cluster::Deployment interface
// (deployment_base.hpp) and run the shared RetryClient (client.hpp) as
// the client of the paper's measurement harness: an at-least-once
// timeout/retry/backoff loop plus per-leg consultation of a
// faults::LinkSchedule, so scenarios with crashed sites or partitioned
// WAN links complete (or are counted as timed out) instead of
// black-holing. With faults disabled and retries off, the request path
// is byte-identical to the fault-free original.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/deployment_base.hpp"
#include "cluster/dispatch.hpp"
#include "cluster/network.hpp"
#include "cluster/state_tier.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "des/sink.hpp"
#include "des/station.hpp"
#include "faults/fault.hpp"
#include "support/rng.hpp"

namespace hce::cluster {

struct CloudConfig {
  int num_servers = 5;
  /// Server speed relative to the reference machine (1.0 = identical
  /// hardware at edge and cloud, the paper's base assumption).
  double speed = 1.0;
  NetworkModel network = NetworkModel::fixed(0.025);
  DispatchPolicy dispatch = DispatchPolicy::kCentralQueue;
  /// Per-request fixed load-balancer processing overhead (HAProxy hop).
  Time dispatch_overhead = 0.0;
  /// Client-side timeout/retry/backoff policy (failover does not apply to
  /// the single-site cloud; retries go back to the same dispatcher).
  RetryPolicy retry;
  /// WAN degradation schedule on the client->cloud path (null = healthy).
  std::shared_ptr<const faults::LinkSchedule> link_faults;
  /// Servers per fault "site": set_site_up(g, up) crashes/recovers the
  /// contiguous server group [g*fault_group_size, (g+1)*fault_group_size)
  /// — the cloud-side mirror of one edge site's hardware under CRN-paired
  /// outage traces.
  int fault_group_size = 1;
};

class CloudDeployment final : public Deployment {
 public:
  CloudDeployment(des::Simulation& sim, CloudConfig cfg, Rng rng);

  /// Client in region `req.site` issues the request now. The request
  /// traverses the uplink, the dispatcher, a server, and the downlink;
  /// completion is recorded in sink().
  void submit(des::Request req) override;

  des::Sink& sink() override { return sink_; }
  const des::Sink& sink() const override { return sink_; }
  double utilization() const override { return cluster_.utilization(); }
  std::uint64_t completed() const override { return cluster_.completed(); }
  const ClientStats& client_stats() const override { return client_.stats(); }
  /// Requests black-holed or killed inside the cluster (crashed servers).
  std::uint64_t dropped() const override { return cluster_.dropped(); }
  void reset_stats() override;
  /// Fault groups (server blocks mirroring edge sites); >= 1.
  int num_sites() const override;
  void set_site_up(int site, bool up) override;
  /// Station util/queue probes plus `cloud/client_pending`.
  void instrument(obs::Sampler& sampler) const override;
  void reserve_inflight(std::size_t n) override { pool_.reserve(n); }
  std::size_t pool_high_water() const override { return pool_.high_water(); }
  /// Cloud server-time plus WAN request/response sends (all client
  /// traffic crosses the WAN here).
  cost::Usage cost_usage() const override;
  const CloudConfig& config() const { return cfg_; }
  Cluster& cluster() { return cluster_; }

 private:
  // Retry-client hooks, bound statically (no virtual dispatch per event).
  friend class BasicRetryClient<CloudDeployment>;
  void client_send(des::Request req, int target);
  int client_retry_target(const des::Request& req, int prev_target);

  des::Simulation& sim_;
  CloudConfig cfg_;
  Rng rng_;
  Cluster cluster_;
  des::Sink sink_;
  /// In-flight request payloads (uplink/downlink legs): calendar handlers
  /// capture 4-byte pool handles, not Requests.
  des::RequestPool pool_;
  /// WAN crossings since the last reset, stamped at send issue (before
  /// any link-partition drop: the bytes leave the NIC either way).
  std::uint64_t wan_request_sends_ = 0;
  std::uint64_t wan_response_sends_ = 0;
  Time stats_epoch_ = 0.0;
  BasicRetryClient<CloudDeployment> client_;
};

struct EdgeConfig {
  int num_sites = 5;
  int servers_per_site = 1;
  /// Edge server speed relative to the cloud reference; < 1 models the
  /// resource-constrained edge hardware of §3.1.1 (s_edge > s_cloud).
  double speed = 1.0;
  NetworkModel network = NetworkModel::fixed(0.001);

  // --- Geographic load balancing (§5.1 mitigation) --------------------
  bool geo_lb = false;
  /// Redirect when the local site's queue length is at least this.
  std::size_t geo_lb_queue_threshold = 2;
  /// Round-trip penalty added per redirect hop (inter-site distance).
  Time inter_site_rtt = 0.020;
  int max_redirects = 1;

  // --- Fault handling ---------------------------------------------------
  /// Client-side timeout/retry/backoff. When `retry.failover` is set,
  /// requests arriving at a crashed site are rerouted to the next-nearest
  /// up site (ring order, one inter_site_rtt/2 hop each), and timed-out
  /// attempts are re-issued against the next-nearest up site rather than
  /// the crashed one. Failover-on-crash models dispatcher health checks
  /// and is active even when timeout retries are disabled.
  RetryPolicy retry;
  /// Per-site access-link degradation schedules (empty = all healthy;
  /// otherwise one entry per site, null entries allowed).
  std::vector<std::shared_ptr<const faults::LinkSchedule>> site_link_faults;

  // --- Stateful requests (src/state/) -----------------------------------
  /// Cache-tier spec; `state.enabled` turns key consultation on. A miss
  /// at a site pulls the object from the cloud store over state_network
  /// (with state_link_faults applied) before the request may queue —
  /// the data-pull path of the inversion regime.
  state::StateSpec state;
  NetworkModel state_network = NetworkModel::fixed(0.025);
  /// Pull timeout/retry policy; keep enabled when state_link_faults is
  /// set (see StateTierConfig).
  RetryPolicy state_retry;
  std::shared_ptr<const faults::LinkSchedule> state_link_faults;
};

class EdgeDeployment final : public Deployment {
 public:
  EdgeDeployment(des::Simulation& sim, EdgeConfig cfg, Rng rng);

  /// Client in region `req.site` issues the request now; it is served by
  /// its local site (or a redirect target when geo-LB triggers).
  void submit(des::Request req) override;

  des::Sink& sink() override { return sink_; }
  const des::Sink& sink() const override { return sink_; }
  des::Station& site(int i) { return *sites_.at(static_cast<std::size_t>(i)); }
  const des::Station& site(int i) const {
    return *sites_.at(static_cast<std::size_t>(i));
  }
  int num_sites() const override { return cfg_.num_sites; }
  void set_site_up(int site, bool up) override;
  /// Mean utilization across sites.
  double utilization() const override;
  /// Utilization of one site.
  double site_utilization(int i) const override {
    return site(i).utilization();
  }
  std::uint64_t completed() const override;
  std::uint64_t redirects() const override { return redirect_count_; }
  /// Crash-failover hops (distinct from geo-LB redirects: these reroute
  /// around *down* sites, not long queues).
  std::uint64_t failovers() const override { return failover_count_; }
  const ClientStats& client_stats() const override { return client_.stats(); }
  /// Requests black-holed or killed at crashed sites.
  std::uint64_t dropped() const override;
  void reset_stats() override;
  /// Per-site util/queue probes plus `edge/client_pending` (and, with a
  /// state tier, per-site cache occupancy + pulls-in-flight gauges).
  void instrument(obs::Sampler& sampler) const override;
  const EdgeConfig& config() const { return cfg_; }

  state::CacheStats cache_stats() const override {
    return tier_ ? tier_->cache_stats() : state::CacheStats{};
  }
  state::PullStats pull_stats() const override {
    return tier_ ? tier_->pull_stats() : state::PullStats{};
  }
  /// The state tier, or null when the deployment is stateless.
  const StateTier* state_tier() const { return tier_.get(); }
  /// Mutable tier access for the partitioned runner's remote-store wiring.
  StateTier* mutable_state_tier() { return tier_.get(); }
  void reserve_inflight(std::size_t n) override {
    pool_.reserve(n);
    if (tier_) tier_->reserve_inflight(n);
  }
  std::size_t pool_high_water() const override { return pool_.high_water(); }
  /// Edge server-time and site rental; WAN traffic is only the state
  /// tier's pull path (client access links are local).
  cost::Usage cost_usage() const override;

 private:
  // Retry-client hooks, bound statically (no virtual dispatch per event).
  friend class BasicRetryClient<EdgeDeployment>;
  void client_send(des::Request req, int target);
  int client_retry_target(const des::Request& req, int prev_target);

  void arrive_at_site(des::Request req, int site_index);
  int pick_redirect_target(int from_site) const;
  /// Next up site in ring order after `from` (the "next-nearest" site of
  /// a constant-inter-site-RTT topology); -1 if every site is down.
  int next_up_site(int from) const;
  const faults::LinkSchedule* link_schedule(int site) const;

  des::Simulation& sim_;
  EdgeConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<des::Station>> sites_;
  des::Sink sink_;
  /// In-flight request payloads (network legs, failover/redirect hops):
  /// handlers capture 4-byte pool handles.
  des::RequestPool pool_;
  std::uint64_t redirect_count_ = 0;
  std::uint64_t failover_count_ = 0;
  Time stats_epoch_ = 0.0;
  /// Cache tier between routing and the serving queue (null = stateless).
  std::unique_ptr<StateTier> tier_;
  BasicRetryClient<EdgeDeployment> client_;
};

}  // namespace hce::cluster
