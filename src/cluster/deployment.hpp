// Edge and cloud deployment topologies (the paper's Figure 1).
//
// Both deployments accept client-side request submissions and record
// completed requests (with full end-to-end timing) into a Sink. The only
// structural difference between them is the paper's point:
//
//   CloudDeployment — one site, K servers, one network RTT (n_cloud),
//   requests from all regions funneled through one dispatcher.
//
//   EdgeDeployment — k sites of m servers each, a short network RTT
//   (n_edge), requests pinned to their originating site (optionally with
//   geographic load balancing, §5.1's "queue jockeying" mitigation).
#pragma once

#include <memory>
#include <vector>

#include "cluster/dispatch.hpp"
#include "cluster/network.hpp"
#include "des/request.hpp"
#include "des/simulation.hpp"
#include "des/sink.hpp"
#include "des/station.hpp"
#include "support/rng.hpp"

namespace hce::cluster {

struct CloudConfig {
  int num_servers = 5;
  /// Server speed relative to the reference machine (1.0 = identical
  /// hardware at edge and cloud, the paper's base assumption).
  double speed = 1.0;
  NetworkModel network = NetworkModel::fixed(0.025);
  DispatchPolicy dispatch = DispatchPolicy::kCentralQueue;
  /// Per-request load-balancer processing overhead (HAProxy hop).
  Time dispatch_overhead = 0.0;
};

class CloudDeployment {
 public:
  CloudDeployment(des::Simulation& sim, CloudConfig cfg, Rng rng);

  /// Client in region `req.site` issues the request now. The request
  /// traverses the uplink, the dispatcher, a server, and the downlink;
  /// completion is recorded in sink().
  void submit(des::Request req);

  des::Sink& sink() { return sink_; }
  const des::Sink& sink() const { return sink_; }
  double utilization() const { return cluster_.utilization(); }
  std::uint64_t completed() const { return cluster_.completed(); }
  void reset_stats() { cluster_.reset_stats(); }
  const CloudConfig& config() const { return cfg_; }
  Cluster& cluster() { return cluster_; }

 private:
  des::Simulation& sim_;
  CloudConfig cfg_;
  Rng rng_;
  Cluster cluster_;
  des::Sink sink_;
};

struct EdgeConfig {
  int num_sites = 5;
  int servers_per_site = 1;
  /// Edge server speed relative to the cloud reference; < 1 models the
  /// resource-constrained edge hardware of §3.1.1 (s_edge > s_cloud).
  double speed = 1.0;
  NetworkModel network = NetworkModel::fixed(0.001);

  // --- Geographic load balancing (§5.1 mitigation) --------------------
  bool geo_lb = false;
  /// Redirect when the local site's queue length is at least this.
  std::size_t geo_lb_queue_threshold = 2;
  /// Round-trip penalty added per redirect hop (inter-site distance).
  Time inter_site_rtt = 0.020;
  int max_redirects = 1;
};

class EdgeDeployment {
 public:
  EdgeDeployment(des::Simulation& sim, EdgeConfig cfg, Rng rng);

  /// Client in region `req.site` issues the request now; it is served by
  /// its local site (or a redirect target when geo-LB triggers).
  void submit(des::Request req);

  des::Sink& sink() { return sink_; }
  const des::Sink& sink() const { return sink_; }
  des::Station& site(int i) { return *sites_.at(static_cast<std::size_t>(i)); }
  const des::Station& site(int i) const {
    return *sites_.at(static_cast<std::size_t>(i));
  }
  int num_sites() const { return cfg_.num_sites; }
  /// Mean utilization across sites.
  double utilization() const;
  /// Utilization of one site.
  double site_utilization(int i) const { return site(i).utilization(); }
  std::uint64_t completed() const;
  std::uint64_t redirects() const { return redirect_count_; }
  void reset_stats();
  const EdgeConfig& config() const { return cfg_; }

 private:
  void arrive_at_site(des::Request req, int site_index);
  int pick_redirect_target(int from_site) const;

  des::Simulation& sim_;
  EdgeConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<des::Station>> sites_;
  des::Sink sink_;
  std::uint64_t redirect_count_ = 0;
};

}  // namespace hce::cluster
