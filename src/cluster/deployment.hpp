// Edge and cloud deployment topologies (the paper's Figure 1).
//
// Both deployments accept client-side request submissions and record
// completed requests (with full end-to-end timing) into a Sink. The only
// structural difference between them is the paper's point:
//
//   CloudDeployment — one site, K servers, one network RTT (n_cloud),
//   requests from all regions funneled through one dispatcher.
//
//   EdgeDeployment — k sites of m servers each, a short network RTT
//   (n_edge), requests pinned to their originating site (optionally with
//   geographic load balancing, §5.1's "queue jockeying" mitigation).
//
// Both also embed the *client* of the paper's measurement harness: an
// at-least-once timeout/retry/backoff loop (RetryPolicy) plus per-leg
// consultation of a faults::LinkSchedule, so scenarios with crashed sites
// or partitioned WAN links complete (or are counted as timed out) instead
// of black-holing. With faults disabled and retries off, the request path
// is byte-identical to the fault-free original.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/dispatch.hpp"
#include "cluster/network.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "des/sink.hpp"
#include "des/station.hpp"
#include "faults/fault.hpp"
#include "support/rng.hpp"

namespace hce::cluster {

/// Client-side accounting of the timeout/retry loop. The core identity —
/// asserted by the invariant tests — is that with retries enabled every
/// offered request resolves exactly once:
///
///   offered == delivered + timeouts        (after the calendar drains)
///
/// (delivered counts first responses only; late duplicate responses of
/// retried requests land in `duplicates`, legs lost to WAN partitions in
/// `link_drops`.) Without retries, faults can lose requests silently and
/// only offered/delivered remain meaningful.
///
/// Counters describe the cohort of requests *offered since the last
/// reset_stats()*: a request submitted before a warmup reset but resolving
/// after it touches no counter (otherwise `timeouts` could exceed
/// `offered` and availability would leave [0, 1]).
struct ClientStats {
  std::uint64_t offered = 0;     ///< logical requests submitted
  std::uint64_t delivered = 0;   ///< first responses accepted by clients
  std::uint64_t retries = 0;     ///< re-issued attempts
  std::uint64_t timeouts = 0;    ///< abandoned after the retry budget
  std::uint64_t duplicates = 0;  ///< stale responses dropped at the client
  std::uint64_t link_drops = 0;  ///< request/response legs lost to partitions

  /// Fraction of offered requests *not* abandoned. 1.0 when fault-free.
  double availability() const {
    return offered > 0
               ? 1.0 - static_cast<double>(timeouts) /
                           static_cast<double>(offered)
               : 1.0;
  }
  double timeout_rate() const {
    return offered > 0 ? static_cast<double>(timeouts) /
                             static_cast<double>(offered)
                       : 0.0;
  }
};

struct CloudConfig {
  int num_servers = 5;
  /// Server speed relative to the reference machine (1.0 = identical
  /// hardware at edge and cloud, the paper's base assumption).
  double speed = 1.0;
  NetworkModel network = NetworkModel::fixed(0.025);
  DispatchPolicy dispatch = DispatchPolicy::kCentralQueue;
  /// Per-request fixed load-balancer processing overhead (HAProxy hop).
  Time dispatch_overhead = 0.0;
  /// Client-side timeout/retry/backoff policy (failover does not apply to
  /// the single-site cloud; retries go back to the same dispatcher).
  RetryPolicy retry;
  /// WAN degradation schedule on the client->cloud path (null = healthy).
  std::shared_ptr<const faults::LinkSchedule> link_faults;
};

class CloudDeployment {
 public:
  CloudDeployment(des::Simulation& sim, CloudConfig cfg, Rng rng);

  /// Client in region `req.site` issues the request now. The request
  /// traverses the uplink, the dispatcher, a server, and the downlink;
  /// completion is recorded in sink().
  void submit(des::Request req);

  des::Sink& sink() { return sink_; }
  const des::Sink& sink() const { return sink_; }
  double utilization() const { return cluster_.utilization(); }
  std::uint64_t completed() const { return cluster_.completed(); }
  const ClientStats& client_stats() const { return client_; }
  /// Requests black-holed or killed inside the cluster (crashed servers).
  std::uint64_t dropped() const { return cluster_.dropped(); }
  void reset_stats();
  const CloudConfig& config() const { return cfg_; }
  Cluster& cluster() { return cluster_; }

 private:
  struct PendingRequest {
    des::Simulation::EventId timeout_event;
    int attempt = 1;  ///< 1-based attempt number currently in flight
    std::uint64_t epoch = 0;  ///< stats epoch the request was offered in
    des::Request req;
  };

  void start_attempt(des::Request req, int attempt, std::uint64_t epoch);
  void send_attempt(des::Request req);
  void on_timeout(std::uint64_t token);
  void deliver(des::Request req);

  des::Simulation& sim_;
  CloudConfig cfg_;
  Rng rng_;
  Cluster cluster_;
  des::Sink sink_;
  /// In-flight request payloads (uplink/downlink legs, retry backoffs):
  /// calendar handlers capture 4-byte pool handles, not Requests.
  des::RequestPool pool_;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_token_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped by reset_stats()
  ClientStats client_;
};

struct EdgeConfig {
  int num_sites = 5;
  int servers_per_site = 1;
  /// Edge server speed relative to the cloud reference; < 1 models the
  /// resource-constrained edge hardware of §3.1.1 (s_edge > s_cloud).
  double speed = 1.0;
  NetworkModel network = NetworkModel::fixed(0.001);

  // --- Geographic load balancing (§5.1 mitigation) --------------------
  bool geo_lb = false;
  /// Redirect when the local site's queue length is at least this.
  std::size_t geo_lb_queue_threshold = 2;
  /// Round-trip penalty added per redirect hop (inter-site distance).
  Time inter_site_rtt = 0.020;
  int max_redirects = 1;

  // --- Fault handling ---------------------------------------------------
  /// Client-side timeout/retry/backoff. When `retry.failover` is set,
  /// requests arriving at a crashed site are rerouted to the next-nearest
  /// up site (ring order, one inter_site_rtt/2 hop each), and timed-out
  /// attempts are re-issued against the next-nearest up site rather than
  /// the crashed one. Failover-on-crash models dispatcher health checks
  /// and is active even when timeout retries are disabled.
  RetryPolicy retry;
  /// Per-site access-link degradation schedules (empty = all healthy;
  /// otherwise one entry per site, null entries allowed).
  std::vector<std::shared_ptr<const faults::LinkSchedule>> site_link_faults;
};

class EdgeDeployment {
 public:
  EdgeDeployment(des::Simulation& sim, EdgeConfig cfg, Rng rng);

  /// Client in region `req.site` issues the request now; it is served by
  /// its local site (or a redirect target when geo-LB triggers).
  void submit(des::Request req);

  des::Sink& sink() { return sink_; }
  const des::Sink& sink() const { return sink_; }
  des::Station& site(int i) { return *sites_.at(static_cast<std::size_t>(i)); }
  const des::Station& site(int i) const {
    return *sites_.at(static_cast<std::size_t>(i));
  }
  int num_sites() const { return cfg_.num_sites; }
  /// Mean utilization across sites.
  double utilization() const;
  /// Utilization of one site.
  double site_utilization(int i) const { return site(i).utilization(); }
  std::uint64_t completed() const;
  std::uint64_t redirects() const { return redirect_count_; }
  /// Crash-failover hops (distinct from geo-LB redirects: these reroute
  /// around *down* sites, not long queues).
  std::uint64_t failovers() const { return failover_count_; }
  const ClientStats& client_stats() const { return client_; }
  /// Requests black-holed or killed at crashed sites.
  std::uint64_t dropped() const;
  void reset_stats();
  const EdgeConfig& config() const { return cfg_; }

 private:
  struct PendingRequest {
    des::Simulation::EventId timeout_event;
    int attempt = 1;   ///< 1-based attempt number currently in flight
    int target = 0;    ///< site the in-flight attempt was sent to
    std::uint64_t epoch = 0;  ///< stats epoch the request was offered in
    des::Request req;
  };

  void arrive_at_site(des::Request req, int site_index);
  int pick_redirect_target(int from_site) const;
  /// Next up site in ring order after `from` (the "next-nearest" site of
  /// a constant-inter-site-RTT topology); -1 if every site is down.
  int next_up_site(int from) const;
  const faults::LinkSchedule* link_schedule(int site) const;

  void start_attempt(des::Request req, int attempt, int target,
                     std::uint64_t epoch);
  void send_attempt(des::Request req, int target);
  void on_timeout(std::uint64_t token);
  void deliver(des::Request req);

  des::Simulation& sim_;
  EdgeConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<des::Station>> sites_;
  des::Sink sink_;
  /// In-flight request payloads (network legs, failover/redirect hops,
  /// retry backoffs): handlers capture 4-byte pool handles.
  des::RequestPool pool_;
  std::uint64_t redirect_count_ = 0;
  std::uint64_t failover_count_ = 0;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_token_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped by reset_stats()
  ClientStats client_;
};

}  // namespace hce::cluster
