// Network path model between clients and a deployment.
//
// The paper treats the network as a round-trip latency constant per
// scenario (edge 1 ms; cloud 15/25/54/80 ms), measured RTTs varying within
// small ranges ("20 to 24 ms"). NetworkModel captures both: a base RTT
// plus an optional per-request jitter distribution, split evenly between
// the uplink and downlink.
#pragma once

#include "dist/distribution.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace hce::cluster {

struct NetworkModel {
  /// Base round-trip time.
  Time rtt = 0.0;
  /// Optional extra per-request round-trip jitter; sampled once per
  /// request and split across both directions. Null = no jitter.
  dist::DistPtr jitter;

  /// Samples the one-way (uplink or downlink) delay for one request leg.
  /// Call once per leg; each leg re-samples jitter independently. Clamped
  /// at zero so wide jitter on a short path cannot produce negative time.
  Time one_way(Rng& rng) const {
    Time d = rtt / 2.0;
    if (jitter) d += jitter->sample(rng) / 2.0;
    return d < 0.0 ? 0.0 : d;
  }

  /// Expected round-trip including jitter mean.
  Time expected_rtt() const {
    return rtt + (jitter ? jitter->mean() : 0.0);
  }

  static NetworkModel fixed(Time rtt) { return NetworkModel{rtt, nullptr}; }
  static NetworkModel jittered(Time rtt, dist::DistPtr jitter_dist) {
    return NetworkModel{rtt, std::move(jitter_dist)};
  }
};

}  // namespace hce::cluster
