#include "cluster/hybrid.hpp"

#include <algorithm>

#include "obs/sampler.hpp"
#include "support/contracts.hpp"

namespace hce::cluster {

HybridDeployment::HybridDeployment(des::Simulation& sim, HybridConfig cfg,
                                   Rng rng)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      cloud_(sim, "hybrid-cloud", cfg_.cloud_servers, cfg_.cloud_dispatch),
      client_(sim, cfg_.retry, *this) {
  HCE_EXPECT(cfg_.num_sites >= 1, "hybrid needs >= 1 edge site");
  HCE_EXPECT(cfg_.servers_per_site >= 1,
             "hybrid needs >= 1 server per site");
  HCE_EXPECT(cfg_.cloud_servers >= 1, "hybrid needs >= 1 cloud server");
  HCE_EXPECT(cfg_.site_link_faults.empty() ||
                 static_cast<int>(cfg_.site_link_faults.size()) ==
                     cfg_.num_sites,
             "site_link_faults must be empty or one entry per site");

  sites_.reserve(static_cast<std::size_t>(cfg_.num_sites));
  for (int s = 0; s < cfg_.num_sites; ++s) {
    sites_.push_back(std::make_unique<des::Station>(
        sim, "hybrid-edge/" + std::to_string(s), cfg_.servers_per_site,
        cfg_.edge_speed, s));
    sites_.back()->set_completion_handler([this](const des::Request& done) {
      // Local completion: response returns over the site's access link.
      Time extra = 0.0;
      const faults::LinkSchedule* ls = link_schedule(done.station_id);
      if (ls != nullptr) {
        if (ls->partitioned(sim_.now())) {
          client_.count_link_drop();  // response lost; timeout recovers
          return;
        }
        extra = ls->extra_one_way(sim_.now());
      }
      const Time downlink = cfg_.edge_network.one_way(rng_) + extra;
      const auto h = pool_.put(des::Request(done));
      sim_.schedule_in(downlink, [this, h] {
        des::Request r = pool_.take(h);
        r.t_completed = sim_.now();
        if (client_.on_response(r)) sink_.record(r);
      });
    });
  }
  cloud_.set_completion_handler([this](const des::Request& done) {
    // Offloaded completion: the response returns directly from the cloud
    // to the client over the WAN path.
    Time extra = 0.0;
    ++wan_response_sends_;  // cloud transmits even if the WAN drops it
    if (cfg_.cloud_link_faults) {
      if (cfg_.cloud_link_faults->partitioned(sim_.now())) {
        client_.count_link_drop();  // response lost; timeout recovers
        return;
      }
      extra = cfg_.cloud_link_faults->extra_one_way(sim_.now());
    }
    const Time downlink = cfg_.cloud_network.one_way(rng_) + extra;
    const auto h = pool_.put(des::Request(done));
    sim_.schedule_in(downlink, [this, h] {
      des::Request r = pool_.take(h);
      r.t_completed = sim_.now();
      if (client_.on_response(r)) sink_.record(r);
    });
  });
  if (cfg_.state.enabled) {
    StateTierConfig tc;
    tc.spec = cfg_.state;
    // Local misses pull over the hybrid's own cloud path — the store
    // lives next to the overflow pool.
    tc.pull_network = cfg_.cloud_network;
    tc.pull_retry = cfg_.state_retry;
    tc.pull_link_faults = cfg_.cloud_link_faults;
    tc.num_sites = cfg_.num_sites;
    tier_ = std::make_unique<StateTier>(
        sim, std::move(tc), rng_.stream("state-pull"),
        [this](des::Request r, int site) {
          ++local_;
          sites_[static_cast<std::size_t>(site)]->arrive(std::move(r));
        });
  }
}

const faults::LinkSchedule* HybridDeployment::link_schedule(int site) const {
  if (cfg_.site_link_faults.empty() || site < 0 ||
      site >= static_cast<int>(cfg_.site_link_faults.size())) {
    return nullptr;
  }
  return cfg_.site_link_faults[static_cast<std::size_t>(site)].get();
}

void HybridDeployment::submit(des::Request req) {
  HCE_EXPECT(req.site >= 0 && req.site < cfg_.num_sites,
             "hybrid submit: request site out of range");
  const int target = req.site;  // requests enter through their home site
  client_.submit(std::move(req), target);
}

void HybridDeployment::client_send(des::Request req, int target) {
  Time extra = 0.0;
  const faults::LinkSchedule* ls = link_schedule(target);
  if (ls != nullptr) {
    if (ls->partitioned(sim_.now())) {
      client_.count_link_drop();  // lost in transit; the timeout recovers it
      return;
    }
    extra = ls->extra_one_way(sim_.now());
  }
  const Time uplink = cfg_.edge_network.one_way(rng_) + extra;
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, target, h] {
    arrive_at_site(pool_.take(h), target);
  });
}

int HybridDeployment::client_retry_target(const des::Request& req,
                                          int /*prev_target*/) {
  // Re-enter the local site: its arrival logic offloads around crashed
  // sites and long queues, so the retry inherits the hybrid's escape
  // valve instead of needing a ring of its own.
  return req.site;
}

void HybridDeployment::arrive_at_site(des::Request req, int site_index) {
  auto& station = *sites_[static_cast<std::size_t>(site_index)];
  if (!station.is_up() && cfg_.retry.failover) {
    // Health-checked offload: the local site is crashed, so the request
    // takes the cloud path regardless of the queue threshold. Without
    // failover it black-holes at the station (counted in dropped()) and
    // the client timeout takes over.
    offload_to_cloud(std::move(req));
    return;
  }
  if (station.queue_length() >= cfg_.offload_queue_threshold) {
    offload_to_cloud(std::move(req));
    return;
  }
  if (tier_ != nullptr) {
    // Only the locally served branch consults the cache: offloaded
    // requests execute next to the store and never pull. The tier's
    // resume counts `local_` when the request finally queues.
    tier_->access(std::move(req), site_index);
    return;
  }
  ++local_;
  station.arrive(std::move(req));
}

void HybridDeployment::offload_to_cloud(des::Request req) {
  // Forward over the edge->cloud leg; the response returns directly from
  // the cloud to the client.
  ++offloaded_;
  ++req.redirects;
  Time extra = 0.0;
  ++wan_request_sends_;  // forward leg crosses the WAN, billed per attempt
  if (cfg_.cloud_link_faults) {
    if (cfg_.cloud_link_faults->partitioned(sim_.now())) {
      client_.count_link_drop();  // forward leg lost; timeout recovers
      return;
    }
    extra = cfg_.cloud_link_faults->extra_one_way(sim_.now());
  }
  const Time forward =
      std::max<Time>(0.0, (cfg_.cloud_network.rtt - cfg_.edge_network.rtt) /
                              2.0) +
      extra;
  const auto fh = pool_.put(std::move(req));
  sim_.schedule_in(forward, [this, fh] {
    cloud_.dispatch(pool_.take(fh), rng_);
  });
}

void HybridDeployment::set_site_up(int site, bool up) {
  sites_.at(static_cast<std::size_t>(site))->set_up(up);
}

double HybridDeployment::offload_fraction() const {
  const std::uint64_t total = offloaded_ + local_;
  return total == 0 ? 0.0
                    : static_cast<double>(offloaded_) /
                          static_cast<double>(total);
}

double HybridDeployment::edge_utilization() const {
  double sum = 0.0;
  for (const auto& s : sites_) sum += s->utilization();
  return sum / static_cast<double>(sites_.size());
}

double HybridDeployment::utilization() const {
  // Busy-server integral over all provisioned servers, edge and cloud.
  const double edge_servers =
      static_cast<double>(cfg_.num_sites) *
      static_cast<double>(cfg_.servers_per_site);
  const double cloud_servers = static_cast<double>(cfg_.cloud_servers);
  double busy = 0.0;
  for (const auto& s : sites_) {
    busy += s->utilization() * static_cast<double>(cfg_.servers_per_site);
  }
  busy += cloud_.utilization() * cloud_servers;
  return busy / (edge_servers + cloud_servers);
}

std::uint64_t HybridDeployment::completed() const {
  std::uint64_t n = cloud_.completed();
  for (const auto& s : sites_) n += s->completed();
  return n;
}

std::uint64_t HybridDeployment::dropped() const {
  std::uint64_t n = cloud_.dropped();
  for (const auto& s : sites_) n += s->dropped_arrivals() + s->killed();
  // Requests whose state pull was abandoned are black-holed in the tier.
  if (tier_ != nullptr) n += tier_->pull_stats().abandoned;
  return n;
}

void HybridDeployment::reset_stats() {
  for (auto& s : sites_) s->reset_stats();
  cloud_.reset_stats();
  offloaded_ = 0;
  local_ = 0;
  wan_request_sends_ = 0;
  wan_response_sends_ = 0;
  stats_epoch_ = sim_.now();
  if (tier_ != nullptr) tier_->reset_stats();
  client_.reset_stats();
}

cost::Usage HybridDeployment::cost_usage() const {
  cost::Usage u;
  u.elapsed_seconds = sim_.now() - stats_epoch_;
  u.edge.provisioned_seconds =
      static_cast<double>(cfg_.num_sites) *
      static_cast<double>(cfg_.servers_per_site) * u.elapsed_seconds;
  for (const auto& s : sites_) u.edge.busy_seconds += s->busy_integral();
  u.edge_site_seconds =
      static_cast<double>(cfg_.num_sites) * u.elapsed_seconds;
  u.cloud.provisioned_seconds =
      static_cast<double>(cfg_.cloud_servers) * u.elapsed_seconds;
  for (const auto& st : cloud_.stations()) {
    u.cloud.busy_seconds += st->busy_integral();
  }
  u.wan.request_sends = wan_request_sends_;
  u.wan.response_sends = wan_response_sends_;
  if (tier_ != nullptr) {
    u.wan.pull_request_sends = tier_->pull_request_sends();
    u.wan.pull_response_sends = tier_->pull_response_sends();
  }
  return u;
}

void HybridDeployment::instrument(obs::Sampler& sampler) const {
  for (const auto& s : sites_) sampler.add_station_probes(*s);
  for (const auto& st : cloud_.stations()) sampler.add_station_probes(*st);
  sampler.add_probe("hybrid/client_pending", [this] {
    return static_cast<double>(client_.pending_in_flight());
  });
  if (tier_ != nullptr) tier_->instrument(sampler, "hybrid");
}

}  // namespace hce::cluster
