#include "cluster/hybrid.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace hce::cluster {

HybridDeployment::HybridDeployment(des::Simulation& sim, HybridConfig cfg,
                                   Rng rng)
    : sim_(sim),
      cfg_(cfg),
      rng_(std::move(rng)),
      cloud_(sim, "hybrid-cloud", cfg.cloud_servers, cfg.cloud_dispatch) {
  HCE_EXPECT(cfg.num_sites >= 1, "hybrid needs >= 1 edge site");
  HCE_EXPECT(cfg.servers_per_site >= 1,
             "hybrid needs >= 1 server per site");
  HCE_EXPECT(cfg.cloud_servers >= 1, "hybrid needs >= 1 cloud server");

  auto record_after = [this](const des::Request& done, Time downlink) {
    const auto h = pool_.put(des::Request(done));
    sim_.schedule_in(downlink, [this, h] {
      des::Request r = pool_.take(h);
      r.t_completed = sim_.now();
      sink_.record(r);
    });
  };

  sites_.reserve(static_cast<std::size_t>(cfg.num_sites));
  for (int s = 0; s < cfg.num_sites; ++s) {
    sites_.push_back(std::make_unique<des::Station>(
        sim, "hybrid-edge/" + std::to_string(s), cfg.servers_per_site,
        cfg.edge_speed, s));
    sites_.back()->set_completion_handler(
        [this, record_after](const des::Request& done) {
          record_after(done, cfg_.edge_network.one_way(rng_));
        });
  }
  cloud_.set_completion_handler(
      [this, record_after](const des::Request& done) {
        record_after(done, cfg_.cloud_network.one_way(rng_));
      });
}

void HybridDeployment::submit(des::Request req) {
  HCE_EXPECT(req.site >= 0 && req.site < cfg_.num_sites,
             "hybrid submit: request site out of range");
  req.t_created = sim_.now();
  const int site_index = req.site;
  const Time uplink = cfg_.edge_network.one_way(rng_);
  const auto h = pool_.put(std::move(req));
  sim_.schedule_in(uplink, [this, site_index, h] {
    des::Request r = pool_.take(h);
    auto& station = *sites_[static_cast<std::size_t>(site_index)];
    if (station.queue_length() >= cfg_.offload_queue_threshold) {
      // Forward over the edge->cloud leg; the response returns directly
      // from the cloud to the client.
      ++offloaded_;
      ++r.redirects;
      const Time forward = std::max<Time>(
          0.0, (cfg_.cloud_network.rtt - cfg_.edge_network.rtt) / 2.0);
      const auto fh = pool_.put(std::move(r));
      sim_.schedule_in(forward, [this, fh] {
        cloud_.dispatch(pool_.take(fh), rng_);
      });
      return;
    }
    ++local_;
    station.arrive(std::move(r));
  });
}

double HybridDeployment::offload_fraction() const {
  const std::uint64_t total = offloaded_ + local_;
  return total == 0 ? 0.0
                    : static_cast<double>(offloaded_) /
                          static_cast<double>(total);
}

double HybridDeployment::edge_utilization() const {
  double sum = 0.0;
  for (const auto& s : sites_) sum += s->utilization();
  return sum / static_cast<double>(sites_.size());
}

void HybridDeployment::reset_stats() {
  for (auto& s : sites_) s->reset_stats();
  cloud_.reset_stats();
  offloaded_ = 0;
  local_ = 0;
}

}  // namespace hce::cluster
