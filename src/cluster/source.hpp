// Request sources: drive a deployment from an arrival process or a trace.
//
// A Source owns its arrival process, service model, and RNG streams, and
// submits requests through a type-erased callback — the same source can
// drive an EdgeDeployment, a CloudDeployment, or both mirrored (paired
// comparison with common random numbers, which sharpens the edge-vs-cloud
// crossover estimates considerably).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "des/request.hpp"
#include "des/simulation.hpp"
#include "dist/zipf.hpp"
#include "support/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/service.hpp"
#include "workload/trace.hpp"

namespace hce::cluster {

using SubmitFn = std::function<void(des::Request)>;

/// One pre-sampled request: absolute arrival time, service demand, and
/// (for stateful workloads) the data key. Sources fill a ring of these in
/// one pass, amortizing the virtual ArrivalProcess / ServiceModel /
/// ZipfSampler calls that would otherwise fire once per simulated event.
/// The fill loop draws in exactly the per-event order (arrival_i,
/// service_i interleaved on the arrival/service stream; keys on their own
/// stream), so pre-generation changes no RNG stream state and every
/// golden digest stays bit-identical — pinned by the determinism tests.
struct PregenRequest {
  Time t = 0.0;
  Time demand = 0.0;
  std::uint64_t key = 0;
};

/// Generates requests for one region/site from an arrival process, with
/// service demands drawn from a service model. Stops at `until`.
class Source {
 public:
  Source(des::Simulation& sim, workload::ArrivalPtr arrivals,
         workload::ServicePtr service, int site, SubmitFn submit, Rng rng);

  /// Begins generation; arrivals strictly after now() up to `until`.
  void start(Time until);

  /// Attaches a key sampler (stateful workloads): each generated request
  /// draws Request::key from the popularity law, using the dedicated
  /// `key_rng` stream — attaching keys cannot perturb arrival or service
  /// sampling, so stateless runs stay bit-identical. Unset = keys stay 0.
  void set_key_sampler(std::shared_ptr<const dist::ZipfSampler> keys,
                       Rng key_rng) {
    keys_ = std::move(keys);
    key_rng_.emplace(std::move(key_rng));
  }

  std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next();
  void refill();

  des::Simulation& sim_;
  workload::ArrivalPtr arrivals_;
  workload::ServicePtr service_;
  int site_;
  SubmitFn submit_;
  Rng rng_;
  std::shared_ptr<const dist::ZipfSampler> keys_;
  std::optional<Rng> key_rng_;
  Time until_ = 0.0;
  Time prev_time_ = 0.0;  ///< last pre-generated arrival (chains the ring)
  std::uint64_t generated_ = 0;
  std::uint64_t next_id_ = 0;
  /// Pre-sampled arrivals, consumed front to back; refilled when drained.
  std::vector<PregenRequest> ring_;
  std::size_t ring_pos_ = 0;
  bool exhausted_ = false;  ///< the process produced an arrival >= until_
};

/// Generates identical request streams (same arrival times, same service
/// demands, same ids) into two deployments — the paired-comparison driver
/// used by the latency sweeps.
class MirroredSource {
 public:
  MirroredSource(des::Simulation& sim, workload::ArrivalPtr arrivals,
                 workload::ServicePtr service, int site, SubmitFn submit_a,
                 SubmitFn submit_b, Rng rng);
  void start(Time until);

  /// Attaches a key sampler. The key is drawn ONCE per logical request
  /// and shared by both mirrored copies — CRN pairing extends to the data
  /// access pattern, so an edge/cloud (or edge/edge) comparison sees the
  /// identical key sequence on both sides. Dedicated stream; see
  /// Source::set_key_sampler.
  void set_key_sampler(std::shared_ptr<const dist::ZipfSampler> keys,
                       Rng key_rng) {
    keys_ = std::move(keys);
    key_rng_.emplace(std::move(key_rng));
  }

  std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next();
  void refill();

  des::Simulation& sim_;
  workload::ArrivalPtr arrivals_;
  workload::ServicePtr service_;
  int site_;
  SubmitFn submit_a_;
  SubmitFn submit_b_;
  Rng rng_;
  std::shared_ptr<const dist::ZipfSampler> keys_;
  std::optional<Rng> key_rng_;
  Time until_ = 0.0;
  Time prev_time_ = 0.0;  ///< last pre-generated arrival (chains the ring)
  std::uint64_t generated_ = 0;
  std::uint64_t next_id_ = 0;
  /// Pre-sampled arrivals, consumed front to back; refilled when drained.
  std::vector<PregenRequest> ring_;
  std::size_t ring_pos_ = 0;
  bool exhausted_ = false;  ///< the process produced an arrival >= until_
};

/// Replays a Trace into one or two deployments. Events are submitted at
/// their trace timestamps (offset by `t_offset`); service demands come
/// from the trace itself, mirroring the paper's Azure replay.
class TraceReplaySource {
 public:
  TraceReplaySource(des::Simulation& sim,
                    std::shared_ptr<const workload::Trace> trace,
                    SubmitFn submit, Time t_offset = 0.0);

  /// Adds a second mirrored destination (e.g. the cloud aggregate).
  void also_submit_to(SubmitFn submit_b) { submit_b_ = std::move(submit_b); }

  /// Schedules the replay (incrementally, one pending event at a time).
  void start();

  std::uint64_t replayed() const { return index_; }

 private:
  void schedule_next();

  des::Simulation& sim_;
  std::shared_ptr<const workload::Trace> trace_;
  SubmitFn submit_;
  SubmitFn submit_b_;
  Time t_offset_;
  std::uint64_t index_ = 0;
};

}  // namespace hce::cluster
