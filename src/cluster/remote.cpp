#include "cluster/remote.hpp"

#include <utility>

#include "cluster/state_tier.hpp"
#include "obs/sampler.hpp"
#include "support/contracts.hpp"

namespace hce::cluster {

// ---------------------------------------------------------------------------
// CloudHub
// ---------------------------------------------------------------------------

CloudHub::CloudHub(des::PartitionedSimulation& pds, int home_partition,
                   CloudHubConfig cfg, Rng rng)
    : pds_(pds),
      home_(home_partition),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      sim_(pds.partition(home_partition)),
      cluster_(sim_, "cloud", cfg_.num_servers, cfg_.dispatch, cfg_.speed) {
  HCE_EXPECT(cfg_.fault_group_size >= 1,
             "cloud fault_group_size must be >= 1");
  HCE_EXPECT(!cfg_.site_partition.empty(),
             "cloud hub needs the site -> partition map");
  const auto n = static_cast<std::size_t>(pds.num_partitions());
  front_ends_.assign(n, nullptr);
  response_drops_.assign(n, 0);
  response_sends_.assign(n, 0);
  cluster_.set_completion_handler(
      [this](const des::Request& done) { on_complete(done); });
}

void CloudHub::register_front_end(int partition, RemoteCloudClient* fe) {
  HCE_EXPECT(partition >= 0 &&
                 partition < static_cast<int>(front_ends_.size()),
             "front-end partition out of range");
  HCE_EXPECT(front_ends_[static_cast<std::size_t>(partition)] == nullptr,
             "front end already registered for this partition");
  front_ends_[static_cast<std::size_t>(partition)] = fe;
}

void CloudHub::deliver_request(void* self, des::Request req,
                               std::uint64_t /*origin*/) {
  static_cast<CloudHub*>(self)->dispatch_now(std::move(req));
}

void CloudHub::dispatch_now(des::Request req) {
  cluster_.dispatch(std::move(req), rng_);
}

void CloudHub::on_complete(const des::Request& done) {
  HCE_ASSERT(done.site >= 0 &&
                 done.site < static_cast<int>(cfg_.site_partition.size()),
             "completed request names an unknown site");
  const int origin = cfg_.site_partition[static_cast<std::size_t>(done.site)];
  // Response-path WAN check at departure time, exactly like the
  // sequential CloudDeployment. Drops are counted hub-side per origin
  // (see the header's accounting note) — the origin's timeout still
  // recovers the request, since its pending entry was never resolved.
  Time extra = 0.0;
  ++response_sends_[static_cast<std::size_t>(origin)];
  if (cfg_.link_faults) {
    if (cfg_.link_faults->partitioned(sim_.now())) {
      ++response_drops_[static_cast<std::size_t>(origin)];
      return;
    }
    extra = cfg_.link_faults->extra_one_way(sim_.now());
  }
  const Time downlink = cfg_.network.one_way(rng_) + extra;
  RemoteCloudClient* fe = front_ends_[static_cast<std::size_t>(origin)];
  HCE_ASSERT(fe != nullptr, "completion for an unregistered partition");
  des::Request copy = done;
  if (origin == home_) {
    const auto h = pool_.put(std::move(copy));
    sim_.schedule_in(downlink, [this, fe, h] { fe->deliver(pool_.take(h)); });
    return;
  }
  pds_.post(home_, origin, sim_.now() + downlink,
            &RemoteCloudClient::deliver_response, fe, std::move(copy),
            static_cast<std::uint64_t>(origin));
}

void CloudHub::set_site_up(int group, bool up) {
  cluster_.set_server_group_up(group, cfg_.fault_group_size, up);
}

void CloudHub::reset_stats() {
  cluster_.reset_stats();
  for (std::uint64_t& d : response_drops_) d = 0;
  for (std::uint64_t& s : response_sends_) s = 0;
  stats_epoch_ = sim_.now();
}

cost::ServerTime CloudHub::server_time() const {
  cost::ServerTime t;
  t.provisioned_seconds =
      static_cast<double>(cfg_.num_servers) * stats_elapsed();
  for (const auto& st : cluster_.stations()) {
    t.busy_seconds += st->busy_integral();
  }
  return t;
}

void CloudHub::instrument(obs::Sampler& sampler) const {
  for (const auto& st : cluster_.stations()) {
    sampler.add_station_probes(*st);
  }
}

// ---------------------------------------------------------------------------
// RemoteCloudClient
// ---------------------------------------------------------------------------

RemoteCloudClient::RemoteCloudClient(des::PartitionedSimulation& pds,
                                     int self_partition, CloudHub& hub,
                                     RemoteCloudClientConfig cfg, Rng rng)
    : pds_(pds),
      self_(self_partition),
      hub_(hub),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      sim_(pds.partition(self_partition)),
      client_(sim_, cfg_.retry, *this) {
  hub_.register_front_end(self_, this);
}

void RemoteCloudClient::client_send(des::Request req, int /*target*/) {
  Time extra = 0.0;
  ++wan_request_sends_;  // one per attempt: retries are billed like firsts
  if (cfg_.link_faults) {
    if (cfg_.link_faults->partitioned(sim_.now())) {
      client_.count_link_drop();  // lost in transit; the timeout recovers it
      return;
    }
    extra = cfg_.link_faults->extra_one_way(sim_.now());
  }
  const Time uplink =
      cfg_.network.one_way(rng_) + extra + cfg_.dispatch_overhead;
  if (self_ == hub_.home_partition()) {
    const auto h = pool_.put(std::move(req));
    sim_.schedule_in(uplink, [this, h] { hub_.dispatch_now(pool_.take(h)); });
    return;
  }
  pds_.post(self_, hub_.home_partition(), sim_.now() + uplink,
            &CloudHub::deliver_request, &hub_, std::move(req),
            static_cast<std::uint64_t>(self_));
}

void RemoteCloudClient::deliver_response(void* self, des::Request req,
                                         std::uint64_t /*tag*/) {
  static_cast<RemoteCloudClient*>(self)->deliver(std::move(req));
}

void RemoteCloudClient::deliver(des::Request req) {
  req.t_completed = sim_.now();
  // A stale token generation (the foreground client timed out or retried
  // while this response crossed partitions) lands here as a duplicate —
  // remote cancel semantics with no cancel message.
  if (client_.on_response(req)) sink_.record(req);
}

void RemoteCloudClient::reserve(std::size_t inflight,
                                std::size_t completions) {
  pool_.reserve(inflight);
  sink_.reserve(completions);
}

void RemoteCloudClient::instrument(obs::Sampler& sampler) const {
  sampler.add_probe("cloud/client_pending", [this] {
    return static_cast<double>(client_.pending_in_flight());
  });
}

// ---------------------------------------------------------------------------
// StateStoreHub
// ---------------------------------------------------------------------------

StateStoreHub::StateStoreHub(des::PartitionedSimulation& pds,
                             int home_partition, StateStoreHubConfig cfg,
                             Rng rng)
    : pds_(pds),
      home_(home_partition),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      sim_(pds.partition(home_partition)) {
  const auto n = static_cast<std::size_t>(pds.num_partitions());
  tiers_.assign(n, nullptr);
  response_drops_.assign(n, 0);
  response_sends_.assign(n, 0);
}

void StateStoreHub::register_tier(int partition, StateTier* tier) {
  HCE_EXPECT(partition >= 0 && partition < static_cast<int>(tiers_.size()),
             "tier partition out of range");
  HCE_EXPECT(tiers_[static_cast<std::size_t>(partition)] == nullptr,
             "tier already registered for this partition");
  tiers_[static_cast<std::size_t>(partition)] = tier;
}

void StateStoreHub::deliver_pull(void* self, des::Request pull,
                                 std::uint64_t origin) {
  static_cast<StateStoreHub*>(self)->respond(std::move(pull),
                                             static_cast<int>(origin));
}

void StateStoreHub::respond(des::Request pull, int origin) {
  StateTier* tier = tiers_[static_cast<std::size_t>(origin)];
  HCE_ASSERT(tier != nullptr, "pull from an unregistered partition");
  // WAN check at the store's actual receive time (the fault schedule is a
  // pure function of time, so evaluating it here matches the sequential
  // tier's store_respond exactly in structure).
  Time extra = 0.0;
  ++response_sends_[static_cast<std::size_t>(origin)];
  if (cfg_.link_faults != nullptr) {
    if (cfg_.link_faults->partitioned(sim_.now())) {
      ++response_drops_[static_cast<std::size_t>(origin)];
      return;
    }
    extra = cfg_.link_faults->extra_one_way(sim_.now());
  }
  // The object rides the response leg: one-way latency plus its transfer
  // time (sampled at issue, carried in the pull's service_demand).
  const Time leg = cfg_.network.one_way(rng_) + extra + pull.service_demand;
  pds_.post(home_, origin, sim_.now() + leg, &StateTier::complete_remote,
            tier, std::move(pull), static_cast<std::uint64_t>(origin));
}

void StateStoreHub::reset_stats() {
  for (std::uint64_t& d : response_drops_) d = 0;
  for (std::uint64_t& s : response_sends_) s = 0;
}

}  // namespace hce::cluster
