#include "cluster/dispatch.hpp"

#include <limits>

#include "support/contracts.hpp"

namespace hce::cluster {

std::string to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kCentralQueue: return "central-queue";
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kRandom: return "random";
    case DispatchPolicy::kJoinShortestQueue: return "jsq";
    case DispatchPolicy::kLeastWork: return "least-work";
  }
  return "unknown";
}

Cluster::Cluster(des::Simulation& sim, const std::string& name,
                 int num_servers, DispatchPolicy policy, double speed)
    : sim_(sim), num_servers_(num_servers), policy_(policy) {
  HCE_EXPECT(num_servers >= 1, "cluster needs at least one server");
  if (policy == DispatchPolicy::kCentralQueue) {
    stations_.push_back(
        std::make_unique<des::Station>(sim, name, num_servers, speed, 0));
  } else {
    stations_.reserve(static_cast<std::size_t>(num_servers));
    for (int s = 0; s < num_servers; ++s) {
      stations_.push_back(std::make_unique<des::Station>(
          sim, name + "/" + std::to_string(s), 1, speed, s));
    }
  }
}

void Cluster::set_completion_handler(
    des::Station::CompletionHandler handler) {
  for (auto& st : stations_) {
    st->set_completion_handler(handler);
  }
}

void Cluster::dispatch(des::Request req, Rng& rng) {
  if (policy_ == DispatchPolicy::kCentralQueue) {
    stations_[0]->arrive(std::move(req));
    return;
  }
  std::size_t target = 0;
  switch (policy_) {
    case DispatchPolicy::kRoundRobin:
      target = rr_next_;
      rr_next_ = (rr_next_ + 1) % stations_.size();
      break;
    case DispatchPolicy::kRandom:
      target = rng.below(stations_.size());
      break;
    case DispatchPolicy::kJoinShortestQueue: {
      std::size_t best = std::numeric_limits<std::size_t>::max();
      for (std::size_t s = 0; s < stations_.size(); ++s) {
        const std::size_t n = stations_[s]->in_system();
        if (n < best) {
          best = n;
          target = s;
        }
      }
      break;
    }
    case DispatchPolicy::kLeastWork: {
      double best = std::numeric_limits<double>::max();
      for (std::size_t s = 0; s < stations_.size(); ++s) {
        // Queued work plus a busy indicator as an in-service proxy.
        const double w = stations_[s]->queued_work() +
                         (stations_[s]->busy_servers() > 0 ? 1e-9 : 0.0);
        if (w < best ||
            (w == best &&
             stations_[s]->in_system() < stations_[target]->in_system())) {
          best = w;
          target = s;
        }
      }
      break;
    }
    case DispatchPolicy::kCentralQueue:
      break;  // unreachable
  }
  stations_[target]->arrive(std::move(req));
}

double Cluster::utilization() const {
  double sum = 0.0;
  int servers = 0;
  for (const auto& st : stations_) {
    sum += st->utilization() * st->num_servers();
    servers += st->num_servers();
  }
  return servers > 0 ? sum / servers : 0.0;
}

std::size_t Cluster::queue_length() const {
  std::size_t n = 0;
  for (const auto& st : stations_) n += st->queue_length();
  return n;
}

std::uint64_t Cluster::completed() const {
  std::uint64_t n = 0;
  for (const auto& st : stations_) n += st->completed();
  return n;
}

void Cluster::reset_stats() {
  for (auto& st : stations_) st->reset_stats();
}

}  // namespace hce::cluster
