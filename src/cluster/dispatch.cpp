#include "cluster/dispatch.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"

namespace hce::cluster {

std::string to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kCentralQueue: return "central-queue";
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kRandom: return "random";
    case DispatchPolicy::kJoinShortestQueue: return "jsq";
    case DispatchPolicy::kLeastWork: return "least-work";
  }
  return "unknown";
}

Cluster::Cluster(des::Simulation& sim, const std::string& name,
                 int num_servers, DispatchPolicy policy, double speed)
    : sim_(sim), num_servers_(num_servers), policy_(policy) {
  HCE_EXPECT(num_servers >= 1, "cluster needs at least one server");
  if (policy == DispatchPolicy::kCentralQueue) {
    stations_.push_back(
        std::make_unique<des::Station>(sim, name, num_servers, speed, 0));
  } else {
    stations_.reserve(static_cast<std::size_t>(num_servers));
    for (int s = 0; s < num_servers; ++s) {
      stations_.push_back(std::make_unique<des::Station>(
          sim, name + "/" + std::to_string(s), 1, speed, s));
    }
  }
}

void Cluster::set_completion_handler(
    des::Station::CompletionHandler handler) {
  for (auto& st : stations_) {
    st->set_completion_handler(handler);
  }
}

void Cluster::dispatch(des::Request req, Rng& rng) {
  if (policy_ == DispatchPolicy::kCentralQueue) {
    stations_[0]->arrive(std::move(req));
    return;
  }
  // Crashed member stations are skipped by every policy (a real dispatcher
  // health-checks its backends). When every member is down the request is
  // still handed to a station, where it is black-holed and counted in
  // dropped(); the client-side timeout layer recovers it. The fault-free
  // fast paths consume exactly the RNG draws of the original policies, so
  // enabling the fault subsystem cannot perturb fault-free streams.
  const std::size_t n = stations_.size();
  std::size_t target = 0;
  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      target = rr_next_;
      for (std::size_t tries = 0; tries + 1 < n && !stations_[target]->is_up();
           ++tries) {
        target = (target + 1) % n;
      }
      rr_next_ = (target + 1) % n;
      break;
    }
    case DispatchPolicy::kRandom: {
      std::size_t up_count = 0;
      for (const auto& st : stations_) up_count += st->is_up() ? 1 : 0;
      if (up_count == n || up_count == 0) {
        target = rng.below(n);
        break;
      }
      std::size_t pick = rng.below(up_count);
      for (std::size_t s = 0; s < n; ++s) {
        if (!stations_[s]->is_up()) continue;
        if (pick == 0) {
          target = s;
          break;
        }
        --pick;
      }
      break;
    }
    case DispatchPolicy::kJoinShortestQueue: {
      std::size_t best = std::numeric_limits<std::size_t>::max();
      bool found = false;
      for (std::size_t s = 0; s < stations_.size(); ++s) {
        if (!stations_[s]->is_up()) continue;
        const std::size_t in_sys = stations_[s]->in_system();
        if (in_sys < best) {
          best = in_sys;
          target = s;
          found = true;
        }
      }
      if (!found) target = 0;
      break;
    }
    case DispatchPolicy::kLeastWork: {
      double best = std::numeric_limits<double>::max();
      bool found = false;
      for (std::size_t s = 0; s < stations_.size(); ++s) {
        if (!stations_[s]->is_up()) continue;
        // Queued work plus a busy indicator as an in-service proxy.
        const double w = stations_[s]->queued_work() +
                         (stations_[s]->busy_servers() > 0 ? 1e-9 : 0.0);
        if (!found || w < best ||
            (w == best &&
             stations_[s]->in_system() < stations_[target]->in_system())) {
          best = w;
          target = s;
          found = true;
        }
      }
      if (!found) target = 0;
      break;
    }
    case DispatchPolicy::kCentralQueue:
      break;  // unreachable
  }
  stations_[target]->arrive(std::move(req));
}

void Cluster::set_server_group_up(int group, int group_size, bool up) {
  HCE_EXPECT(group >= 0, "server group index must be non-negative");
  HCE_EXPECT(group_size >= 1, "server group size must be positive");
  const int lo = group * group_size;
  if (lo >= num_servers_) return;  // group not present in this cluster
  const int hi = std::min(lo + group_size, num_servers_);
  if (policy_ == DispatchPolicy::kCentralQueue) {
    // The pooled cloud loses `hi - lo` tellers but keeps its single line —
    // the bank-teller argument applied to degraded capacity. Guard with
    // down_groups_ so repeated crash (or repeated recover) notifications
    // are idempotent.
    const int width = hi - lo;
    const int active = stations_[0]->active_servers();
    if (!up) {
      if (down_groups_.insert(group).second) {
        stations_[0]->set_active_servers(std::max(0, active - width));
      }
    } else {
      if (down_groups_.erase(group) > 0) {
        stations_[0]->set_active_servers(std::min(num_servers_, active + width));
      }
    }
  } else {
    // Dispatched cluster: the member stations crash/recover individually
    // (Station::set_up is itself idempotent).
    for (int s = lo; s < hi; ++s) {
      stations_[static_cast<std::size_t>(s)]->set_up(up);
    }
    if (!up) {
      down_groups_.insert(group);
    } else {
      down_groups_.erase(group);
    }
  }
}

int Cluster::active_servers() const {
  if (policy_ == DispatchPolicy::kCentralQueue) {
    return stations_[0]->active_servers();
  }
  int active = 0;
  for (const auto& st : stations_) {
    if (st->is_up()) active += st->num_servers();
  }
  return active;
}

std::uint64_t Cluster::dropped() const {
  std::uint64_t n = 0;
  for (const auto& st : stations_) {
    n += st->dropped_arrivals() + st->killed();
  }
  return n;
}

double Cluster::utilization() const {
  double sum = 0.0;
  int servers = 0;
  for (const auto& st : stations_) {
    sum += st->utilization() * st->num_servers();
    servers += st->num_servers();
  }
  return servers > 0 ? sum / servers : 0.0;
}

std::size_t Cluster::queue_length() const {
  std::size_t n = 0;
  for (const auto& st : stations_) n += st->queue_length();
  return n;
}

std::uint64_t Cluster::completed() const {
  std::uint64_t n = 0;
  for (const auto& st : stations_) n += st->completed();
  return n;
}

void Cluster::reset_stats() {
  for (auto& st : stations_) st->reset_stats();
}

}  // namespace hce::cluster
