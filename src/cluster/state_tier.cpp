#include "cluster/state_tier.hpp"

#include <utility>

#include "cluster/remote.hpp"
#include "des/partition.hpp"
#include "obs/sampler.hpp"
#include "support/contracts.hpp"

namespace hce::cluster {

StateTier::StateTier(des::Simulation& sim, StateTierConfig cfg, Rng rng,
                     ResumeFn resume)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(std::move(rng)),
      resume_(std::move(resume)),
      pull_client_(sim, cfg_.pull_retry, *this) {
  HCE_EXPECT(cfg_.num_sites >= 1, "state tier needs >= 1 site");
  HCE_EXPECT(resume_ != nullptr, "state tier: null resume function");
  HCE_EXPECT(cfg_.pull_retry.enabled || cfg_.pull_link_faults == nullptr,
             "state pulls over a faulty link need pull retries enabled "
             "(a pull lost to a partition would strand its request)");
  caches_.reserve(static_cast<std::size_t>(cfg_.num_sites));
  for (int s = 0; s < cfg_.num_sites; ++s) {
    caches_.emplace_back(cfg_.spec.cache_capacity, cfg_.spec.admission);
  }
  // A trivial pull path (no RTT, no jitter, no transfer, no faults)
  // completes misses inline: no calendar event is scheduled and no RNG is
  // drawn, so the event sequence is byte-identical to a stateless run —
  // the theta-irrelevant configuration of the determinism test.
  trivial_ = cfg_.pull_network.rtt == 0.0 && cfg_.pull_network.jitter == nullptr &&
             cfg_.spec.pull_transfer == nullptr &&
             cfg_.pull_link_faults == nullptr;
  pull_client_.set_on_abandon(
      [this](const des::Request& pull) { abandon_pull(pull); });
}

void StateTier::access(des::Request req, int site) {
  auto& cache = caches_[static_cast<std::size_t>(site)];
  if (cache.lookup(req.key).valid()) {
    resume_(std::move(req), site);
    return;
  }
  ++issued_;
  if (trivial_) {
    ++completed_;
    cache.insert(req.key);
    resume_(std::move(req), site);
    return;
  }
  // The pull is its own Request: the RetryClient restamps t_created /
  // t_sent on submit, so the parked original keeps its timeline and the
  // pull's lineage measures only the fetch.
  des::Request pull;
  pull.site = site;
  pull.key = req.key;
  if (cfg_.spec.pull_transfer != nullptr) {
    // Object size sampled once per miss: retried pull attempts refetch
    // the same object, so they carry the same transfer time.
    pull.service_demand = cfg_.spec.pull_transfer->sample(rng_);
  }
  pull.id = parked_.put(std::move(req));
  pull_client_.submit(std::move(pull), site);
}

void StateTier::client_send(des::Request pull, int /*target*/) {
  Time extra = 0.0;
  ++pull_request_sends_;  // per attempt, billed whether or not it arrives
  if (cfg_.pull_link_faults != nullptr) {
    if (cfg_.pull_link_faults->partitioned(sim_.now())) {
      pull_client_.count_link_drop();  // lost; the pull timeout recovers it
      return;
    }
    extra = cfg_.pull_link_faults->extra_one_way(sim_.now());
  }
  const Time leg = cfg_.pull_network.one_way(rng_) + extra;
  if (remote_hub_ != nullptr) {
    // Remote mode: the uplink leg crosses partitions as a mailbox post;
    // everything client-side (the pending entry, the armed timeout) stays
    // here, so a pull lost en route is recovered by the local timeout
    // exactly as in local mode.
    remote_pds_->post(remote_self_, remote_store_, sim_.now() + leg,
                      &StateStoreHub::deliver_pull, remote_hub_,
                      std::move(pull),
                      static_cast<std::uint64_t>(remote_self_));
    return;
  }
  const auto h = legs_.put(std::move(pull));
  sim_.schedule_in(leg, [this, h] { store_respond(h); });
}

void StateTier::set_remote_store(des::PartitionedSimulation& pds,
                                 int self_partition, int store_partition,
                                 StateStoreHub& hub) {
  HCE_EXPECT(issued_ == 0, "set_remote_store must precede the first access");
  remote_pds_ = &pds;
  remote_hub_ = &hub;
  remote_self_ = self_partition;
  remote_store_ = store_partition;
}

void StateTier::complete_remote(void* self, des::Request pull,
                                std::uint64_t /*tag*/) {
  static_cast<StateTier*>(self)->finish_pull(std::move(pull));
}

int StateTier::client_retry_target(const des::Request& /*pull*/,
                                   int prev_target) {
  return prev_target;  // one cloud store; retries go back to it
}

void StateTier::store_respond(des::RequestPool::Handle h) {
  des::Request pull = legs_.take(h);
  Time extra = 0.0;
  ++pull_response_sends_;  // the store transmits even if the WAN drops it
  if (cfg_.pull_link_faults != nullptr) {
    if (cfg_.pull_link_faults->partitioned(sim_.now())) {
      pull_client_.count_link_drop();  // response lost; timeout recovers
      return;
    }
    extra = cfg_.pull_link_faults->extra_one_way(sim_.now());
  }
  // The object rides the response leg: one-way latency plus its transfer
  // time (size over WAN bandwidth, sampled at issue).
  const Time leg =
      cfg_.pull_network.one_way(rng_) + extra + pull.service_demand;
  const auto h2 = legs_.put(std::move(pull));
  sim_.schedule_in(leg, [this, h2] { complete_pull(h2); });
}

void StateTier::complete_pull(des::RequestPool::Handle h) {
  finish_pull(legs_.take(h));
}

void StateTier::finish_pull(des::Request pull) {
  pull.t_completed = sim_.now();
  // First response wins; a late response of a retried pull is a duplicate
  // and its parked original is long gone.
  if (!pull_client_.on_response(pull)) return;
  ++completed_;
  const int site = pull.site;
  caches_[static_cast<std::size_t>(site)].insert(pull.key);
  des::Request orig =
      parked_.take(static_cast<des::RequestPool::Handle>(pull.id));
  // Total stall from first issue to landed object — retries, backoff
  // gaps, and transfer included.
  orig.state_pull += sim_.now() - pull.t_created;
  resume_(std::move(orig), site);
}

void StateTier::abandon_pull(const des::Request& pull) {
  ++abandoned_;
  // The pull budget is exhausted: the parked original is dropped (its
  // foreground client's own timeout reports the loss to the user).
  parked_.take(static_cast<des::RequestPool::Handle>(pull.id));
}

state::CacheStats StateTier::cache_stats() const {
  state::CacheStats total;
  for (const auto& c : caches_) total += c.stats();
  return total;
}

state::PullStats StateTier::pull_stats() const {
  state::PullStats p;
  p.issued = issued_;
  p.completed = completed_;
  p.abandoned = abandoned_;
  p.retries = pull_client_.stats().retries;
  p.link_drops = pull_client_.stats().link_drops;
  return p;
}

void StateTier::reset_stats() {
  for (auto& c : caches_) c.reset_stats();
  issued_ = 0;
  completed_ = 0;
  abandoned_ = 0;
  pull_request_sends_ = 0;
  pull_response_sends_ = 0;
  pull_client_.reset_stats();
}

void StateTier::instrument(obs::Sampler& sampler,
                           const std::string& prefix) const {
  for (int s = 0; s < cfg_.num_sites; ++s) {
    const auto* cache = &caches_[static_cast<std::size_t>(s)];
    sampler.add_probe(prefix + "/cache/" + std::to_string(s) + "/occupancy",
                      [cache] { return static_cast<double>(cache->size()); });
  }
  sampler.add_probe(prefix + "/pulls_in_flight", [this] {
    return static_cast<double>(pulls_in_flight());
  });
}

}  // namespace hce::cluster
