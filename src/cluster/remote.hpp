// Cross-partition transports of the partitioned parallel engine.
//
// In a partitioned replication (des/partition.hpp) the consolidated
// cloud — the serving cluster and the state store — lives in partition 0
// while edge sites are sharded across partitions 1..P-1. Two flows cross
// that boundary, and both are split here into a per-partition *front end*
// that owns everything timeout-related and a partition-0 *hub* that owns
// the shared serving hardware:
//
//   * Foreground cloud requests: each partition runs a RemoteCloudClient
//     — its own BasicRetryClient, Sink, uplink NetworkModel, and
//     RequestPool — so the pending table, timeout events, backoff timers,
//     and duplicate suppression all stay in the origin partition. Only
//     the Request itself (carrying its generation-tagged client_token)
//     crosses the mailbox; the CloudHub dispatches it into the shared
//     Cluster and posts the completed request back to the origin's front
//     end. A request whose foreground client timed out while the response
//     was in flight comes home to a stale token generation and is counted
//     a duplicate — cancel semantics work across the boundary without any
//     cross-partition cancel message.
//
//   * State pulls: an edge shard's StateTier (state_tier.hpp, remote
//     mode) posts each pull's uplink leg to the StateStoreHub, which
//     evaluates the WAN fault schedule at actual arrival time, samples
//     the response leg from its own stream, and posts the completion
//     back to the tier. Pull retries/timeouts stay tier-side, exactly
//     like foreground requests.
//
// Accounting subtlety: response legs dropped by a WAN partition are
// detected in partition 0, but the counter belongs to the origin's
// client. Posting an accounting message back would carry a stats-epoch
// race (the origin may have reset mid-flight), so hubs count response
// drops per origin partition themselves, reset at warmup like every
// other stat, and the runner folds them into the per-side link_drops
// after the calendar drains.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/dispatch.hpp"
#include "cluster/network.hpp"
#include "cost/counters.hpp"
#include "des/partition.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/sink.hpp"
#include "faults/fault.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace hce::obs {
class Sampler;
}  // namespace hce::obs

namespace hce::cluster {

class RemoteCloudClient;
class StateTier;

/// Partition-0 side of the split cloud deployment.
struct CloudHubConfig {
  int num_servers = 5;
  double speed = 1.0;
  /// Downlink (response-leg) latency model; the uplink is sampled by the
  /// origin's front end.
  NetworkModel network = NetworkModel::fixed(0.025);
  DispatchPolicy dispatch = DispatchPolicy::kCentralQueue;
  std::shared_ptr<const faults::LinkSchedule> link_faults;
  int fault_group_size = 1;
  /// Origin partition of each global site (routes completions home).
  std::vector<int> site_partition;
};

class CloudHub {
 public:
  CloudHub(des::PartitionedSimulation& pds, int home_partition,
           CloudHubConfig cfg, Rng rng);
  CloudHub(const CloudHub&) = delete;
  CloudHub& operator=(const CloudHub&) = delete;

  void register_front_end(int partition, RemoteCloudClient* fe);

  /// des::PartitionedSimulation::RemoteFn target of uplink deliveries
  /// (`self` is the hub, `origin` the posting partition).
  static void deliver_request(void* self, des::Request req,
                              std::uint64_t origin);
  /// Same-partition entry: partition 0's own front end schedules its
  /// uplink locally and lands here.
  void dispatch_now(des::Request req);

  void set_site_up(int group, bool up);
  void reset_stats();

  int home_partition() const { return home_; }
  double utilization() const { return cluster_.utilization(); }
  std::uint64_t completed() const { return cluster_.completed(); }
  std::uint64_t dropped() const { return cluster_.dropped(); }
  /// Response legs lost to WAN partitions, by origin partition (folded
  /// into that side's link_drops by the runner).
  std::uint64_t response_link_drops(int partition) const {
    return response_drops_[static_cast<std::size_t>(partition)];
  }
  /// Response transmissions by origin partition (stamped at departure,
  /// before the WAN-partition check), for the cost meter — counted
  /// hub-side for the same stats-epoch reason as response drops, merged
  /// into the replication's usage in partition order.
  std::uint64_t response_sends(int partition) const {
    return response_sends_[static_cast<std::size_t>(partition)];
  }
  /// Busy/provisioned server-seconds of the shared cluster since the
  /// last reset (provisioned accrues for the configured fleet through
  /// downtime).
  cost::ServerTime server_time() const;
  /// Measurement window since the last reset, on partition 0's clock.
  double stats_elapsed() const { return sim_.now() - stats_epoch_; }
  void instrument(obs::Sampler& sampler) const;

 private:
  void on_complete(const des::Request& done);

  des::PartitionedSimulation& pds_;
  const int home_;
  CloudHubConfig cfg_;
  Rng rng_;
  des::Simulation& sim_;
  Cluster cluster_;
  /// Payloads of same-partition (origin == home) downlink legs.
  des::RequestPool pool_;
  std::vector<RemoteCloudClient*> front_ends_;
  std::vector<std::uint64_t> response_drops_;
  std::vector<std::uint64_t> response_sends_;
  Time stats_epoch_ = 0.0;
};

/// Per-partition front end of the split cloud deployment: the client side
/// of CloudDeployment (uplink sampling, link-fault consultation, retry
/// loop, sink) with the serving cluster replaced by a mailbox post.
struct RemoteCloudClientConfig {
  /// Uplink latency model (the hub samples the downlink).
  NetworkModel network = NetworkModel::fixed(0.025);
  Time dispatch_overhead = 0.0;
  RetryPolicy retry;
  std::shared_ptr<const faults::LinkSchedule> link_faults;
};

class RemoteCloudClient {
 public:
  RemoteCloudClient(des::PartitionedSimulation& pds, int self_partition,
                    CloudHub& hub, RemoteCloudClientConfig cfg, Rng rng);
  RemoteCloudClient(const RemoteCloudClient&) = delete;
  RemoteCloudClient& operator=(const RemoteCloudClient&) = delete;

  /// Client in region `req.site` (global site index) issues the request.
  void submit(des::Request req) { client_.submit(std::move(req), 0); }

  /// RemoteFn target of the hub's response posts.
  static void deliver_response(void* self, des::Request req,
                               std::uint64_t tag);
  /// Response handed back by the hub (same-partition legs land here
  /// directly; cross-partition ones via deliver_response).
  void deliver(des::Request req);

  des::Sink& sink() { return sink_; }
  const des::Sink& sink() const { return sink_; }
  const ClientStats& stats() const { return client_.stats(); }
  std::size_t pending_in_flight() const { return client_.pending_in_flight(); }
  /// Uplink attempts since the last reset (stamped at send issue, before
  /// any link-partition drop), for the cost meter.
  std::uint64_t wan_request_sends() const { return wan_request_sends_; }
  void reset_stats() {
    client_.reset_stats();
    wan_request_sends_ = 0;
  }
  /// Pre-sizes the leg pool and sink from the runner's load hints.
  void reserve(std::size_t inflight, std::size_t completions);
  std::size_t pool_high_water() const { return pool_.high_water(); }
  void instrument(obs::Sampler& sampler) const;

 private:
  friend class BasicRetryClient<RemoteCloudClient>;
  void client_send(des::Request req, int target);
  int client_retry_target(const des::Request& /*req*/, int prev_target) {
    return prev_target;  // single dispatcher: retries go back to it
  }

  des::PartitionedSimulation& pds_;
  const int self_;
  CloudHub& hub_;
  RemoteCloudClientConfig cfg_;
  Rng rng_;
  des::Simulation& sim_;
  des::Sink sink_;
  /// Payloads of same-partition (self == hub home) uplink legs.
  des::RequestPool pool_;
  std::uint64_t wan_request_sends_ = 0;
  BasicRetryClient<RemoteCloudClient> client_;
};

/// Partition-0 responder of the remote state-pull path. One per
/// partitioned replication; edge-shard StateTiers in remote mode post
/// their pull uplinks here (see StateTier::set_remote_store).
struct StateStoreHubConfig {
  /// Response-leg latency model (the tier samples the uplink).
  NetworkModel network = NetworkModel::fixed(0.025);
  std::shared_ptr<const faults::LinkSchedule> link_faults;
};

class StateStoreHub {
 public:
  StateStoreHub(des::PartitionedSimulation& pds, int home_partition,
                StateStoreHubConfig cfg, Rng rng);
  StateStoreHub(const StateStoreHub&) = delete;
  StateStoreHub& operator=(const StateStoreHub&) = delete;

  /// One remote tier per edge partition.
  void register_tier(int partition, StateTier* tier);

  /// RemoteFn target of tier pull-uplink posts.
  static void deliver_pull(void* self, des::Request pull,
                           std::uint64_t origin);

  std::uint64_t response_link_drops(int partition) const {
    return response_drops_[static_cast<std::size_t>(partition)];
  }
  /// Pull-response transmissions by origin partition (stamped at
  /// departure, before the WAN-partition check), for the cost meter.
  std::uint64_t response_sends(int partition) const {
    return response_sends_[static_cast<std::size_t>(partition)];
  }
  void reset_stats();

 private:
  void respond(des::Request pull, int origin);

  des::PartitionedSimulation& pds_;
  const int home_;
  StateStoreHubConfig cfg_;
  Rng rng_;
  des::Simulation& sim_;
  std::vector<StateTier*> tiers_;
  std::vector<std::uint64_t> response_drops_;
  std::vector<std::uint64_t> response_sends_;
};

}  // namespace hce::cluster
