// The polymorphic deployment interface.
//
// The paper's §5 design-implication story is about *choosing between*
// deployment shapes — pure cloud, pure edge, geo-balanced edge,
// conditional/hybrid edge use, autoscaled edge — under one measurement
// harness. This interface is that harness's view of a deployment: clients
// submit logical requests, completed requests land in a Sink with their
// full timestamp lineage, and the client-side retry loop's accounting is
// observable through ClientStats. The experiment layer (sweep runner,
// crossover finder, fault drills, invariant tests) is written against
// this interface only, so any kind-pair can be compared, not just
// edge-vs-cloud.
//
// Implementations: cluster::CloudDeployment, cluster::EdgeDeployment,
// cluster::HybridDeployment, autoscale::ElasticEdge. All of them run the
// shared cluster::RetryClient (client.hpp) — exactly one timeout/retry/
// failover state machine exists — and differ only in Transport: how one
// attempt physically travels and where re-issues are routed.
#pragma once

#include <cstdint>

#include "cluster/client.hpp"
#include "cost/counters.hpp"
#include "des/request.hpp"
#include "des/sink.hpp"
#include "state/cache.hpp"
#include "state/state.hpp"

namespace hce::obs {
class Sampler;
}  // namespace hce::obs

namespace hce::cluster {

/// Abstract deployment: what the measurement harness sees. One instance
/// per simulation side; single-threaded under the owning simulation.
class Deployment {
 public:
  virtual ~Deployment() = default;

  /// Client in region `req.site` issues the request now. The deployment
  /// stamps t_created, routes the request through its topology, and
  /// records the completion (with t_completed set) into sink().
  virtual void submit(des::Request req) = 0;

  virtual des::Sink& sink() = 0;
  virtual const des::Sink& sink() const = 0;

  /// Mean server utilization since the last reset_stats().
  virtual double utilization() const = 0;
  /// Requests whose service completed at a server.
  virtual std::uint64_t completed() const = 0;
  /// Requests black-holed or killed inside the serving infrastructure
  /// (crashed sites/servers): arrivals at down stations, queue drops, and
  /// in-service kills. Client timeouts recover them when retries are on.
  virtual std::uint64_t dropped() const = 0;

  /// Client-side accounting (offered/delivered/retries/timeouts/...).
  virtual const ClientStats& client_stats() const = 0;

  /// Zeroes all statistics and opens a new measurement epoch (used at the
  /// end of warmup). In-flight requests keep running but touch no counter.
  virtual void reset_stats() = 0;

  // --- Fault injection ----------------------------------------------------
  /// Number of independently faultable sites (edge sites, cloud server
  /// groups, hybrid edge sites...). set_site_up accepts [0, num_sites).
  virtual int num_sites() const = 0;
  /// Crashes (up=false) or recovers (up=true) one site's serving hardware.
  /// The outage driver calls this from pre-materialized fault traces.
  virtual void set_site_up(int site, bool up) = 0;

  // --- Optional per-kind extras (zero where not meaningful) --------------
  /// Geographic load-balancing redirect hops (§5.1 queue jockeying).
  virtual std::uint64_t redirects() const { return 0; }
  /// Crash-failover hops (reroutes around *down* sites).
  virtual std::uint64_t failovers() const { return 0; }
  /// Requests served away from their local site by a hybrid's
  /// threshold-offload policy (0 for non-hybrid kinds).
  virtual std::uint64_t offloaded() const { return 0; }
  /// Utilization of one site, where per-site breakdowns exist.
  virtual double site_utilization(int /*site*/) const { return utilization(); }
  /// Aggregate edge-cache counters of the state tier. Zero-valued for
  /// stateless deployments and for the cloud, which serves state locally
  /// (the store lives next to its servers) — only edge-style kinds pay
  /// the pull path.
  virtual state::CacheStats cache_stats() const { return {}; }
  /// State-pull accounting of the cache tier (zero when stateless).
  virtual state::PullStats pull_stats() const { return {}; }
  /// Metered resource usage since the last reset_stats(): busy and
  /// provisioned server-second integrals, occupied-site-seconds, and WAN
  /// send counters (request/response/state-pull crossings, stamped at
  /// send issue so retries and duplicates are billed). Reading it never
  /// perturbs the simulation. Default: nothing metered.
  virtual cost::Usage cost_usage() const { return {}; }
  /// Pre-sizes the deployment's in-flight request pools for `n`
  /// simultaneous requests, so large runs never grow slabs
  /// mid-replication. Default: no pools to size.
  virtual void reserve_inflight(std::size_t /*n*/) {}
  /// Peak occupancy of the in-flight request pool (0 for kinds without
  /// one) — checked against the runner's reserve hints by the invariant
  /// tests.
  virtual std::size_t pool_high_water() const { return 0; }

  // --- Observability ------------------------------------------------------
  /// Registers this deployment's gauges on a time-series sampler: one
  /// util/queue probe pair per station plus a `<prefix>/client_pending`
  /// gauge over the retry client's in-flight table. Purely read-only —
  /// registering probes schedules nothing and consumes no RNG, so a
  /// deployment behaves identically whether or not it is instrumented.
  /// Default: no probes (deployments opt in).
  virtual void instrument(obs::Sampler& /*sampler*/) const {}

 protected:
  Deployment() = default;
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;
};

}  // namespace hce::cluster
