// The stateful-services tier of edge-style deployments.
//
// Every request names a data object (Request::key). The cloud stores all
// objects next to its servers — cloud requests never stall on data. An
// edge (or hybrid-local) request, however, consults its site's finite
// EdgeCache first: a hit proceeds into the serving queue immediately, a
// miss parks the request and pulls the object from the cloud store over
// the WAN — the same faulty links the edge deployment was built to avoid.
// This is the data-pull inversion regime: the edge keeps its network
// advantage on the request path yet pays (1 - hit_rate) * pull_cost per
// request on the miss path, and for small caches or flat popularity the
// sum inverts the comparison even at low utilization.
//
// The pull path is a client/transport loop in its own right, so it runs
// the unified RetryClient: pulls time out, back off, re-issue, and count
// link drops exactly like foreground requests (`issued == completed +
// abandoned` after the calendar drains). The parked original accumulates
// the whole stall — including pull retries and backoffs — into
// Request::state_pull, the fifth component of the obs/ decomposition.
//
// Storage discipline matches the rest of the engine: parked originals and
// in-flight pull legs live in recycled RequestPool slabs, handlers
// capture 4-byte handles, and the per-site caches are slab-backed — the
// steady-state miss path allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/network.hpp"
#include "des/request.hpp"
#include "des/request_pool.hpp"
#include "des/simulation.hpp"
#include "faults/fault.hpp"
#include "state/cache.hpp"
#include "state/state.hpp"
#include "support/rng.hpp"

namespace hce::obs {
class Sampler;
}  // namespace hce::obs

namespace hce::des {
class PartitionedSimulation;
}  // namespace hce::des

namespace hce::cluster {

class StateStoreHub;

struct StateTierConfig {
  state::StateSpec spec;
  /// RTT of the site <-> cloud-store path (usually the scenario's cloud
  /// RTT: the store lives where the consolidated cloud lives).
  NetworkModel pull_network = NetworkModel::fixed(0.025);
  /// Timeout/retry policy of pulls. Must stay enabled whenever
  /// pull_link_faults is set — a pull lost to a partition with no retry
  /// would strand its parked request forever (enforced at construction).
  RetryPolicy pull_retry;
  /// WAN degradation on the pull path (null = healthy).
  std::shared_ptr<const faults::LinkSchedule> pull_link_faults;
  int num_sites = 1;
};

/// One cache tier per deployment: per-site EdgeCaches plus the shared
/// pull client. Single-threaded under the owning simulation's clock.
class StateTier final {
 public:
  /// Called when a request is cleared to enter site `site`'s queue (cache
  /// hit, or its pull completed). Typically binds Station::arrive.
  using ResumeFn = std::function<void(des::Request, int)>;

  StateTier(des::Simulation& sim, StateTierConfig cfg, Rng rng,
            ResumeFn resume);

  StateTier(const StateTier&) = delete;
  StateTier& operator=(const StateTier&) = delete;

  /// Consults site `site`'s cache for req.key. Hit: resumes the request
  /// synchronously (no calendar event, no RNG). Miss: parks the request
  /// and issues a pull; resume fires when the object lands. When the pull
  /// path is trivial (zero RTT, no jitter, no transfer, no faults) the
  /// miss also completes inline — the knob behind the cache-on-vs-
  /// stateless bit-identity test.
  void access(des::Request req, int site);

  /// Aggregate cache counters over all sites.
  state::CacheStats cache_stats() const;
  const state::EdgeCache& cache(int site) const {
    return caches_[static_cast<std::size_t>(site)];
  }
  /// Pull accounting (issued/completed/abandoned plus the pull client's
  /// retry and link-drop counts).
  state::PullStats pull_stats() const;
  std::size_t pulls_in_flight() const { return pull_client_.pending_in_flight(); }

  /// WAN crossings of the pull path since the last reset, for the cost
  /// meter: one request send per pull attempt (stamped at send issue,
  /// before any link-partition drop) and one response send per store
  /// transmission (local mode; in remote-store mode responses are issued
  /// — and counted — at the StateStoreHub). The trivial inline pull path
  /// schedules no send and is deliberately free.
  std::uint64_t pull_request_sends() const { return pull_request_sends_; }
  std::uint64_t pull_response_sends() const { return pull_response_sends_; }

  /// Zeroes counters (cache contents stay resident — a warmup reset does
  /// not cool the cache) and opens a new pull-client epoch.
  void reset_stats();

  /// Registers per-site occupancy gauges and a pulls-in-flight gauge
  /// under `<prefix>/...`. Read-only, RNG-free.
  void instrument(obs::Sampler& sampler, const std::string& prefix) const;

  bool trivial_pulls() const { return trivial_; }
  const StateTierConfig& config() const { return cfg_; }

  // --- Remote store (partitioned engine) ---------------------------------
  /// Routes the pull path through the store's partition: the tier still
  /// samples each uplink leg and owns every timeout/retry/backoff event,
  /// but the leg is posted to `hub` (partition `store_partition`) instead
  /// of scheduled locally; the hub evaluates WAN faults at its actual
  /// arrival time, samples the response leg from its own stream, and
  /// posts the completion back (StateTier::complete_remote). Local mode —
  /// the default — is untouched, so P=1 stays golden. Call before any
  /// access().
  void set_remote_store(des::PartitionedSimulation& pds, int self_partition,
                        int store_partition, StateStoreHub& hub);
  /// des::PartitionedSimulation::RemoteFn target of the store hub's
  /// response posts (`self` is the tier).
  static void complete_remote(void* self, des::Request pull,
                              std::uint64_t tag);

  /// Pre-sizes the parked-original and in-flight-leg pools from the
  /// runner's load hints.
  void reserve_inflight(std::size_t n) {
    parked_.reserve(n);
    legs_.reserve(n);
  }

 private:
  // Retry-client hooks (the pull loop's view), bound statically.
  friend class BasicRetryClient<StateTier>;
  void client_send(des::Request pull, int target);
  int client_retry_target(const des::Request& pull, int prev_target);

  void store_respond(des::RequestPool::Handle h);
  void complete_pull(des::RequestPool::Handle h);
  /// Shared completion tail of the local and remote pull paths.
  void finish_pull(des::Request pull);
  void abandon_pull(const des::Request& pull);

  des::Simulation& sim_;
  StateTierConfig cfg_;
  Rng rng_;
  ResumeFn resume_;
  std::vector<state::EdgeCache> caches_;
  /// Originals parked behind their pull; the pull carries the handle in
  /// its id field.
  des::RequestPool parked_;
  /// Pull payloads between calendar events (uplink/response legs).
  des::RequestPool legs_;
  BasicRetryClient<StateTier> pull_client_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t pull_request_sends_ = 0;
  std::uint64_t pull_response_sends_ = 0;
  bool trivial_ = false;

  // Remote-store wiring (null = local mode; see set_remote_store).
  des::PartitionedSimulation* remote_pds_ = nullptr;
  StateStoreHub* remote_hub_ = nullptr;
  int remote_self_ = 0;
  int remote_store_ = 0;
};

}  // namespace hce::cluster
