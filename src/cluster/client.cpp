// HCE_HOT_PATH: per-attempt code — hce_lint's no-hot-path-alloc rule
// applies (see client.hpp).
#include "cluster/client.hpp"

namespace hce::cluster {

// The type-erased instantiation (virtual transport hooks) lives here so
// its code exists exactly once; deployments instantiate the template on
// themselves in their own translation units, devirtualizing the
// per-event send / retry-target calls.
template class BasicRetryClient<RetryTransport>;

}  // namespace hce::cluster
