#include "cluster/client.hpp"

#include <utility>

namespace hce::cluster {

void RetryClient::submit(des::Request req, int target) {
  req.t_created = sim_.now();
  req.t_sent = sim_.now();
  ++stats_.offered;
  if (!policy_.enabled) {
    transport_.client_send(std::move(req), target);
    return;
  }
  const std::uint32_t slot = allocate_slot();
  PendingRequest& p = slots_[slot];
  req.client_token = pack(slot, p.generation);
  p.target = target;
  p.epoch = epoch_;
  p.req = std::move(req);
  start_attempt(slot, 1);
}

bool RetryClient::on_response(const des::Request& req) {
  if (!policy_.enabled) {
    ++stats_.delivered;
    return true;
  }
  PendingRequest* p = find_awaiting(req.client_token);
  if (p == nullptr) {
    // The client already timed this attempt out (and either retried or
    // gave up); the late response is a duplicate.
    ++stats_.duplicates;
    return false;
  }
  const bool counted = p->epoch == epoch_;
  sim_.cancel(p->timeout_event);
  release(static_cast<std::uint32_t>(req.client_token & 0xffffffffu));
  if (counted) ++stats_.delivered;
  return true;
}

std::uint32_t RetryClient::allocate_slot() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].occupied = true;
  ++live_;
  if (live_ > high_water_) {
    high_water_ = live_;
    sim_.note_client_pending_high_water(high_water_);
  }
  return slot;
}

void RetryClient::release(std::uint32_t slot) {
  PendingRequest& p = slots_[slot];
  p.occupied = false;
  p.awaiting = false;
  ++p.generation;  // all outstanding tokens for this slot become stale
  free_.push_back(slot);
  --live_;
}

RetryClient::PendingRequest* RetryClient::find_awaiting(std::uint64_t token) {
  const std::uint32_t slot = static_cast<std::uint32_t>(token & 0xffffffffu);
  const std::uint32_t generation = static_cast<std::uint32_t>(token >> 32);
  if (slot >= slots_.size()) return nullptr;
  PendingRequest& p = slots_[slot];
  if (!p.occupied || !p.awaiting || p.generation != generation) return nullptr;
  return &p;
}

void RetryClient::start_attempt(std::uint32_t slot, int attempt) {
  PendingRequest& p = slots_[slot];
  p.attempt = attempt;
  p.awaiting = true;
  // Timeout scheduled before the send, exactly like the pre-refactor
  // deployments: preserves the calendar sequence order and therefore the
  // golden digests.
  p.timeout_event = sim_.schedule_in(policy_.timeout,
                                     [this, slot] { on_timeout(slot); });
  des::Request copy = p.req;
  // Attempt send time: for first attempts this equals t_created; for
  // re-issues the gap t_sent - t_created is exactly the retry penalty
  // (lost attempts plus backoff) of the decomposition in des/request.hpp.
  copy.t_sent = sim_.now();
  transport_.client_send(std::move(copy), p.target);
}

void RetryClient::on_timeout(std::uint32_t slot) {
  PendingRequest& p = slots_[slot];
  // Responses arriving during the backoff gap are duplicates, exactly as
  // if the entry had been erased (the pre-refactor maps erased it here).
  p.awaiting = false;
  // Requests offered before a stats reset keep retrying (the client does
  // not know about measurement epochs) but touch no counter.
  const bool counted = p.epoch == epoch_;
  if (p.attempt >= 1 + policy_.max_retries) {
    if (counted) ++stats_.timeouts;  // budget exhausted: client gives up
    // Resource reclamation must run regardless of the stats epoch — a
    // pull abandoned after a warmup reset still holds a parked request.
    if (on_abandon_) on_abandon_(p.req);
    release(slot);
    return;
  }
  if (counted) ++stats_.retries;
  sim_.schedule_in(policy_.backoff_before(p.attempt),
                   [this, slot] { reissue(slot); });
}

void RetryClient::reissue(std::uint32_t slot) {
  PendingRequest& p = slots_[slot];
  // Pick the re-issue target now (after the backoff, not before): sites
  // may have recovered or crashed during the gap, and the deployment's
  // routing policy should see current state.
  p.target = transport_.client_retry_target(p.req, p.target);
  start_attempt(slot, p.attempt + 1);
}

}  // namespace hce::cluster
