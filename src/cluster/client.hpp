// Client-side transport layer shared by every deployment topology.
//
// The paper's measurement harness is, on the client side, always the same
// machine: it offers a logical request, arms a timeout, re-issues with
// exponential backoff when the deployment goes quiet, picks a (possibly
// different) target for each re-issue, and accepts exactly the first
// response — late responses of retried attempts are duplicates. Before
// this layer existed the loop was duplicated inside CloudDeployment and
// EdgeDeployment (two token maps, two timeout state machines) while
// HybridDeployment and autoscale::ElasticEdge had none at all.
//
// RetryClient is that loop, once. A deployment plugs in a Transport —
//   send(req, target)          how one attempt physically travels
//                              (link-fault consultation, uplink sampling,
//                              dispatch/station arrival), and
//   retry_target(req, prev)    the routing policy for re-issues
//                              (same-target for the single-site cloud,
//                              ring-failover for edge fleets, local-site
//                              for threshold-offload hybrids)
// — and gets the pending-request table, timeout/retry/backoff machinery,
// duplicate suppression, link-drop accounting, and epoch-correct
// ClientStats for free.
//
// The pending table is a slab with a free list (the des::RequestPool
// pattern): tokens are dense 32-bit slot indices tagged with a 32-bit
// per-slot generation, so the hot path is an array index — no hashing,
// no allocation in steady state — and stale tokens (late responses of
// requests that already resolved) miss exactly. The slab's high-water
// mark is reported to Simulation::stats() as the client-side memory
// bound, next to the calendar's own slab_high_water.
//
// HCE_HOT_PATH: per-attempt code — hce_lint's no-hot-path-alloc rule
// applies; the pending table is the recycled slab, not a node map.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "des/request.hpp"
#include "des/simulation.hpp"
#include "support/time.hpp"

namespace hce::cluster {

/// Client-side timeout / retry / exponential-backoff policy. Without it,
/// a request sent to a crashed site or across a partitioned link simply
/// never completes (black hole); with it, the client re-issues the request
/// after `timeout`, waiting backoff_base * backoff_factor^(attempt-1)
/// between attempts, up to a budget of `max_retries` re-issues. Edge-style
/// deployments additionally fail over to the next-nearest *up* site on
/// retry (ring order; see EdgeDeployment); the cloud retries in place and
/// hybrids re-enter their local site (whose arrival logic offloads around
/// crashes).
struct RetryPolicy {
  bool enabled = false;
  Time timeout = 0.5;          ///< per-attempt client timeout
  int max_retries = 2;         ///< retry budget (re-issues after the first try)
  Time backoff_base = 0.05;    ///< backoff before the first retry
  double backoff_factor = 2.0; ///< exponential growth per retry
  bool failover = true;        ///< reroute around down sites (where meaningful)

  /// Backoff preceding re-issue number `retry` (1-based).
  Time backoff_before(int retry) const {
    Time b = backoff_base;
    for (int i = 1; i < retry; ++i) b *= backoff_factor;
    return b;
  }
};

/// Client-side accounting of the timeout/retry loop. The core identity —
/// asserted by the invariant tests — is that with retries enabled every
/// offered request resolves exactly once:
///
///   offered == delivered + timeouts        (after the calendar drains)
///
/// (delivered counts first responses only; late duplicate responses of
/// retried requests land in `duplicates`, legs lost to WAN partitions in
/// `link_drops`.) Without retries, faults can lose requests silently and
/// only offered/delivered remain meaningful.
///
/// Counters describe the cohort of requests *offered since the last
/// reset_stats()*: a request submitted before a warmup reset but resolving
/// after it touches no counter (otherwise `timeouts` could exceed
/// `offered` and availability would leave [0, 1]).
struct ClientStats {
  std::uint64_t offered = 0;     ///< logical requests submitted
  std::uint64_t delivered = 0;   ///< first responses accepted by clients
  std::uint64_t retries = 0;     ///< re-issued attempts
  std::uint64_t timeouts = 0;    ///< abandoned after the retry budget
  std::uint64_t duplicates = 0;  ///< stale responses dropped at the client
  std::uint64_t link_drops = 0;  ///< request/response legs lost to partitions

  /// Fraction of offered requests *not* abandoned. 1.0 when fault-free.
  double availability() const {
    return offered > 0
               ? 1.0 - static_cast<double>(timeouts) /
                           static_cast<double>(offered)
               : 1.0;
  }
  double timeout_rate() const {
    return offered > 0 ? static_cast<double>(timeouts) /
                             static_cast<double>(offered)
                       : 0.0;
  }

  /// Pools counters across clients (the partitioned runner sums each
  /// shard's front-end accounting into one per-side ClientStats).
  ClientStats& operator+=(const ClientStats& o) {
    offered += o.offered;
    delivered += o.delivered;
    retries += o.retries;
    timeouts += o.timeouts;
    duplicates += o.duplicates;
    link_drops += o.link_drops;
    return *this;
  }
};

/// Deployment-side hooks as a virtual interface. The deployments
/// themselves bind statically (BasicRetryClient<ConcreteDeployment>, no
/// per-event virtual dispatch); this base remains for callers that need
/// runtime polymorphism — scripted test transports and the type-erased
/// `RetryClient` alias below.
class RetryTransport {
 public:
  /// Transmits one attempt toward `target`: consult link faults (call
  /// BasicRetryClient::count_link_drop() on a partition and return),
  /// sample the uplink, and schedule arrival at the serving
  /// infrastructure.
  virtual void client_send(des::Request req, int target) = 0;
  /// Routing policy for re-issue attempts: picks the target of the next
  /// attempt given the one that just timed out. Evaluated at re-issue
  /// time (after the backoff), so failover decisions see current site
  /// up/down state.
  virtual int client_retry_target(const des::Request& req,
                                  int prev_target) = 0;

 protected:
  ~RetryTransport() = default;  // non-owning interface
};

/// The shared at-least-once client loop. One instance per deployment;
/// single-threaded under the owning simulation's clock.
///
/// `TransportT` is the deployment-side hook provider; member lookup is
/// static, so a client instantiated on a final deployment class calls
/// client_send / client_retry_target directly (the PR 3 virtual hooks,
/// devirtualized for the sealed set of deployment kinds). The
/// `RetryClient` alias instantiates on the virtual RetryTransport base
/// and behaves exactly like the pre-template class.
template <class TransportT = RetryTransport>
class BasicRetryClient {
 public:
  /// Legacy nested name for the virtual hook interface (every
  /// instantiation exposes it; test transports derive from it).
  using Transport = RetryTransport;

  BasicRetryClient(des::Simulation& sim, const RetryPolicy& policy,
                   TransportT& transport)
      : sim_(sim), policy_(policy), transport_(transport) {}

  BasicRetryClient(const BasicRetryClient&) = delete;
  BasicRetryClient& operator=(const BasicRetryClient&) = delete;

  /// Client offers a logical request, initially routed to `target`.
  /// Stamps t_created, counts it offered, and — with retries enabled —
  /// registers it in the pending table and arms the first timeout.
  void submit(des::Request req, int target);

  /// Deployment calls this when a response reaches the client (after the
  /// downlink leg, with t_completed already stamped). Returns true when
  /// the response is the first for its logical request — the caller then
  /// records it in its sink — and false for duplicates, which are dropped.
  bool on_response(const des::Request& req);

  /// A request or response leg was lost to a link partition. The pending
  /// entry stays armed; the timeout recovers the request.
  void count_link_drop() { ++stats_.link_drops; }

  /// Optional hook fired with the abandoned payload when a request
  /// exhausts its retry budget (the moment `timeouts` is counted), just
  /// before the pending slot is released. For owners that parked
  /// per-request resources keyed by a payload field — the state tier
  /// parks the original request behind each pull — and must reclaim them
  /// even across stats epochs. Unset for plain deployments: behavior is
  /// then byte-identical to the pre-hook client.
  // Wiring-time hook, assigned once before the run — std::function's
  // possible allocation happens at setup, never per event.
  // hce-lint: allow(no-hot-path-alloc)
  void set_on_abandon(std::function<void(const des::Request&)> fn) {
    on_abandon_ = std::move(fn);
  }

  const ClientStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Zeroes the counters and opens a new measurement epoch: requests
  /// offered before the reset keep retrying but touch no counter.
  void reset_stats() {
    stats_ = ClientStats{};
    ++epoch_;
  }

  /// Logical requests currently awaiting a response or a re-issue.
  std::size_t pending_in_flight() const { return live_; }
  /// Peak pending-table occupancy (slab memory bound); also mirrored into
  /// Simulation::stats().client_pending_high_water.
  std::size_t pending_high_water() const { return high_water_; }

 private:
  /// One pending logical request. Exactly one such struct exists in
  /// src/cluster/ — every deployment shares this table.
  struct PendingRequest {
    des::Simulation::EventId timeout_event{};
    std::uint32_t generation = 1;  ///< tags tokens; stale lookups miss
    int attempt = 1;       ///< 1-based attempt number
    int target = 0;        ///< site/pool the current attempt was sent to
    std::uint64_t epoch = 0;  ///< stats epoch the request was offered in
    bool occupied = false; ///< slot holds a live logical request
    /// An attempt is in flight and its response would be accepted. False
    /// during the backoff gap between a timeout and the re-issue —
    /// responses arriving there are duplicates, exactly as if the entry
    /// had been erased.
    bool awaiting = false;
    des::Request req;      ///< payload re-sent on retry
  };

  static std::uint64_t pack(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | slot;
  }

  std::uint32_t allocate_slot();
  void release(std::uint32_t slot);
  /// Live entry for `token` iff slot, generation, and awaiting all match.
  PendingRequest* find_awaiting(std::uint64_t token);

  void start_attempt(std::uint32_t slot, int attempt);
  void on_timeout(std::uint32_t slot);
  void reissue(std::uint32_t slot);

  des::Simulation& sim_;
  RetryPolicy policy_;
  TransportT& transport_;
  // hce-lint: allow(no-hot-path-alloc) — set once at wiring time.
  std::function<void(const des::Request&)> on_abandon_;
  ClientStats stats_;
  std::uint64_t epoch_ = 0;  ///< bumped by reset_stats()

  std::vector<PendingRequest> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

/// The type-erased client: one virtual call per send / retry-target. Used
/// by scripted test transports; deployments instantiate on themselves.
using RetryClient = BasicRetryClient<RetryTransport>;

// --- Template member definitions --------------------------------------

template <class TransportT>
void BasicRetryClient<TransportT>::submit(des::Request req, int target) {
  req.t_created = sim_.now();
  req.t_sent = sim_.now();
  ++stats_.offered;
  if (!policy_.enabled) {
    transport_.client_send(std::move(req), target);
    return;
  }
  const std::uint32_t slot = allocate_slot();
  PendingRequest& p = slots_[slot];
  req.client_token = pack(slot, p.generation);
  p.target = target;
  p.epoch = epoch_;
  p.req = std::move(req);
  start_attempt(slot, 1);
}

template <class TransportT>
bool BasicRetryClient<TransportT>::on_response(const des::Request& req) {
  if (!policy_.enabled) {
    ++stats_.delivered;
    return true;
  }
  PendingRequest* p = find_awaiting(req.client_token);
  if (p == nullptr) {
    // The client already timed this attempt out (and either retried or
    // gave up); the late response is a duplicate.
    ++stats_.duplicates;
    return false;
  }
  const bool counted = p->epoch == epoch_;
  sim_.cancel(p->timeout_event);
  release(static_cast<std::uint32_t>(req.client_token & 0xffffffffu));
  if (counted) ++stats_.delivered;
  return true;
}

template <class TransportT>
std::uint32_t BasicRetryClient<TransportT>::allocate_slot() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].occupied = true;
  ++live_;
  if (live_ > high_water_) {
    high_water_ = live_;
    sim_.note_client_pending_high_water(high_water_);
  }
  return slot;
}

template <class TransportT>
void BasicRetryClient<TransportT>::release(std::uint32_t slot) {
  PendingRequest& p = slots_[slot];
  p.occupied = false;
  p.awaiting = false;
  ++p.generation;  // all outstanding tokens for this slot become stale
  free_.push_back(slot);
  --live_;
}

template <class TransportT>
typename BasicRetryClient<TransportT>::PendingRequest*
BasicRetryClient<TransportT>::find_awaiting(std::uint64_t token) {
  const std::uint32_t slot = static_cast<std::uint32_t>(token & 0xffffffffu);
  const std::uint32_t generation = static_cast<std::uint32_t>(token >> 32);
  if (slot >= slots_.size()) return nullptr;
  PendingRequest& p = slots_[slot];
  if (!p.occupied || !p.awaiting || p.generation != generation) return nullptr;
  return &p;
}

template <class TransportT>
void BasicRetryClient<TransportT>::start_attempt(std::uint32_t slot,
                                                 int attempt) {
  PendingRequest& p = slots_[slot];
  p.attempt = attempt;
  p.awaiting = true;
  // Timeout scheduled before the send, exactly like the pre-refactor
  // deployments: preserves the calendar sequence order and therefore the
  // golden digests.
  p.timeout_event = sim_.schedule_in(policy_.timeout,
                                     [this, slot] { on_timeout(slot); });
  des::Request copy = p.req;
  // Attempt send time: for first attempts this equals t_created; for
  // re-issues the gap t_sent - t_created is exactly the retry penalty
  // (lost attempts plus backoff) of the decomposition in des/request.hpp.
  copy.t_sent = sim_.now();
  transport_.client_send(std::move(copy), p.target);
}

template <class TransportT>
void BasicRetryClient<TransportT>::on_timeout(std::uint32_t slot) {
  PendingRequest& p = slots_[slot];
  // Responses arriving during the backoff gap are duplicates, exactly as
  // if the entry had been erased (the pre-refactor maps erased it here).
  p.awaiting = false;
  // Requests offered before a stats reset keep retrying (the client does
  // not know about measurement epochs) but touch no counter.
  const bool counted = p.epoch == epoch_;
  if (p.attempt >= 1 + policy_.max_retries) {
    if (counted) ++stats_.timeouts;  // budget exhausted: client gives up
    // Resource reclamation must run regardless of the stats epoch — a
    // pull abandoned after a warmup reset still holds a parked request.
    if (on_abandon_) on_abandon_(p.req);
    release(slot);
    return;
  }
  if (counted) ++stats_.retries;
  sim_.schedule_in(policy_.backoff_before(p.attempt),
                   [this, slot] { reissue(slot); });
}

template <class TransportT>
void BasicRetryClient<TransportT>::reissue(std::uint32_t slot) {
  PendingRequest& p = slots_[slot];
  // Pick the re-issue target now (after the backoff, not before): sites
  // may have recovered or crashed during the gap, and the deployment's
  // routing policy should see current state.
  p.target = transport_.client_retry_target(p.req, p.target);
  start_attempt(slot, p.attempt + 1);
}

/// Compiled once in client.cpp; every other TU links against it.
extern template class BasicRetryClient<RetryTransport>;

}  // namespace hce::cluster
